"""Tests for the result store and heatmap renderers."""

import numpy as np
import pytest

from repro.bench.heatmap import BoxData, Heatmap
from repro.bench.results import EvaluationResult, ResultStore


def make_result(algorithm="A10", train="F0", test="F0", precision=0.9,
                recall=0.8, mode=None):
    return EvaluationResult(
        algorithm=algorithm,
        train_dataset=train,
        test_dataset=test,
        mode=mode or ("same" if train == test else "cross"),
        granularity="CONNECTION",
        precision=precision,
        recall=recall,
        f1=0.85,
        accuracy=0.9,
        n_train=700,
        n_test=300,
    )


class TestResultStore:
    def test_query_by_algorithm(self):
        store = ResultStore([make_result("A10"), make_result("A14")])
        assert len(store.query(algorithm="A10")) == 1

    def test_query_combines_filters(self):
        store = ResultStore(
            [
                make_result("A10", "F0", "F0"),
                make_result("A10", "F0", "F1"),
                make_result("A14", "F0", "F1"),
            ]
        )
        assert len(store.query(algorithm="A10", mode="cross")) == 1

    def test_datasets_collects_both_sides(self):
        store = ResultStore([make_result(train="F0", test="F3")])
        assert store.datasets() == ["F0", "F3"]

    def test_best_per_pair(self):
        store = ResultStore(
            [
                make_result("A10", precision=0.5),
                make_result("A14", precision=0.9),
            ]
        )
        assert store.best_per_pair()[("F0", "F0")] == 0.9

    def test_json_round_trip(self, tmp_path):
        store = ResultStore([make_result(), make_result("A14", "F0", "F1")])
        path = tmp_path / "results.json"
        store.save_json(path)
        loaded = ResultStore.load_json(path)
        assert len(loaded) == 2
        assert loaded.results[0] == store.results[0]

    def test_csv_export(self, tmp_path):
        store = ResultStore([make_result()])
        path = tmp_path / "results.csv"
        store.save_csv(path)
        content = path.read_text()
        assert "algorithm" in content.splitlines()[0]
        assert "A10" in content

    def test_per_attack_survives_json(self, tmp_path):
        result = EvaluationResult(
            algorithm="A10", train_dataset="F0", test_dataset="F0",
            mode="same", granularity="CONNECTION", precision=1.0,
            recall=1.0, f1=1.0, accuracy=1.0, n_train=10, n_test=10,
            per_attack={"port_scan": {"precision": 0.7, "recall": 0.5}},
        )
        store = ResultStore([result])
        path = tmp_path / "r.json"
        store.save_json(path)
        loaded = ResultStore.load_json(path)
        assert loaded.results[0].per_attack["port_scan"]["precision"] == 0.7


class TestHeatmap:
    def test_from_cells(self):
        heatmap = Heatmap.from_cells({("a", "x"): 0.5, ("b", "y"): 1.0})
        assert heatmap.cell("a", "x") == 0.5
        assert np.isnan(heatmap.cell("a", "y"))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Heatmap(["a"], ["x", "y"], np.zeros((2, 2)))

    def test_render_marks_missing(self):
        heatmap = Heatmap.from_cells({("a", "x"): 0.5, ("b", "y"): 1.0})
        rendered = heatmap.render()
        assert "--" in rendered
        assert "0.50" in rendered

    def test_csv_round_trippable(self):
        heatmap = Heatmap.from_cells({("a", "x"): 0.25})
        csv_text = heatmap.to_csv()
        assert "0.25" in csv_text
        assert csv_text.splitlines()[0] == ",x"

    def test_row_means_skip_nan(self):
        heatmap = Heatmap.from_cells(
            {("a", "x"): 0.4, ("a", "y"): 0.6, ("b", "x"): 1.0},
            ["a", "b"], ["x", "y"],
        )
        means = heatmap.row_means()
        assert means["a"] == pytest.approx(0.5)
        assert means["b"] == pytest.approx(1.0)


class TestBoxData:
    def test_summary_statistics(self):
        data = BoxData()
        for value in (0.0, 0.25, 0.5, 0.75, 1.0):
            data.add("g", value)
        summary = data.summary()["g"]
        assert summary["min"] == 0.0
        assert summary["median"] == 0.5
        assert summary["max"] == 1.0
        assert summary["n"] == 5

    def test_render_contains_groups(self):
        data = BoxData()
        data.add("A10", 0.9)
        data.add("A14", 0.3)
        rendered = data.render()
        assert "A10" in rendered and "A14" in rendered
