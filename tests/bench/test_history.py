"""Tests for the perf trajectory (repro.bench.history).

Series flattening, the noise-thresholded diff that backs the CI
regression gate, the append-only store's torn-tail tolerance, and both
renderers -- all on synthetic payloads so the suite never has to run
the real benchmark.
"""

import json

import pytest

from repro.bench.history import (
    DEFAULT_THRESHOLD,
    append_history,
    diff_payloads,
    flatten_series,
    load_history,
    render_history,
    render_perf_diff,
)


def payload(*, featurize_rate=100_000.0, op_speedup=2.0,
            cells_per_hour=500.0, fingerprint="f" * 64):
    """A synthetic BENCH_perf payload with one op and every section."""
    return {
        "benchmark": "perf-baseline",
        "provenance": {
            "schema": 2,
            "git_sha": "abc1234",
            "timestamp": "2026-08-08T00:00:00+00:00",
            "workload_fingerprint": fingerprint,
        },
        "converted_ops": {
            "ops": {
                "NprintEncode": {
                    "rows": 1000,
                    "scalar_rows_per_sec": 50_000.0,
                    "batch_rows_per_sec": 50_000.0 * op_speedup,
                    "speedup": op_speedup,
                },
            },
            "speedup": op_speedup,
        },
        "featurize": {
            "scalar_packets_per_sec": featurize_rate / 2,
            "vectorized_packets_per_sec": featurize_rate,
            "speedup": 2.0,
        },
        "cells": {"cells_per_hour": cells_per_hour},
    }


class TestFlattenSeries:
    def test_all_sections_extracted(self):
        series = flatten_series(payload())
        assert series["converted_ops/NprintEncode/speedup"] == 2.0
        assert series["converted_ops/speedup"] == 2.0
        assert series["featurize/vectorized_packets_per_sec"] == 100_000.0
        assert series["cells/cells_per_hour"] == 500.0

    def test_only_higher_is_better_series(self):
        # raw seconds never become series: "regressed" must mean one thing
        assert not [s for s in flatten_series(payload()) if "seconds" in s]

    def test_missing_sections_tolerated(self):
        assert flatten_series({}) == {}
        assert flatten_series({"featurize": {"speedup": 3.0}}) == {
            "featurize/speedup": 3.0
        }


class TestDiffPayloads:
    def test_unchanged_payload_is_clean(self):
        diff = diff_payloads(payload(), payload())
        assert not diff.has_regressions
        assert diff.missing == [] and diff.added == []
        assert all(d.change == 0.0 for d in diff.deltas)

    def test_synthetic_25_percent_regression_is_flagged(self):
        before = payload(featurize_rate=100_000.0)
        after = payload(featurize_rate=75_000.0)  # -25% > 20% threshold
        diff = diff_payloads(before, after)
        assert diff.has_regressions
        names = [d.series for d in diff.regressions]
        assert "featurize/vectorized_packets_per_sec" in names

    def test_noise_below_threshold_passes(self):
        diff = diff_payloads(
            payload(featurize_rate=100_000.0),
            payload(featurize_rate=85_000.0),  # -15% < 20%
        )
        assert not diff.has_regressions

    def test_threshold_override(self):
        before = payload(featurize_rate=100_000.0)
        after = payload(featurize_rate=85_000.0)
        assert diff_payloads(before, after, threshold=0.10).has_regressions
        assert not diff_payloads(before, after, threshold=0.30).has_regressions

    def test_noisy_series_gets_its_wider_threshold(self):
        # -30% on cells/hour sits inside that series' 40% built-in
        # tolerance even though it exceeds the 20% default
        diff = diff_payloads(
            payload(cells_per_hour=500.0), payload(cells_per_hour=350.0)
        )
        assert not diff.has_regressions

    def test_vanished_series_counts_as_regression(self):
        # the converted_ops section is still there, but the op lost its
        # batch path: that is a throughput loss, not a schema change
        after = payload()
        del after["converted_ops"]["ops"]["NprintEncode"]["batch_rows_per_sec"]
        diff = diff_payloads(payload(), after)
        assert diff.has_regressions
        assert diff.missing == [
            "converted_ops/NprintEncode/batch_rows_per_sec"
        ]

    def test_absent_section_is_skipped_not_regressed(self):
        # a --no-cells smoke drops the whole cells section on purpose
        after = payload()
        del after["cells"]
        diff = diff_payloads(payload(), after)
        assert not diff.has_regressions
        assert diff.skipped == ["cells/cells_per_hour"]
        assert any("not measured" in w for w in diff.warnings)

    def test_added_series_is_not_a_regression(self):
        before = payload()
        del before["cells"]
        diff = diff_payloads(before, payload())
        assert not diff.has_regressions
        assert diff.added == ["cells/cells_per_hour"]

    def test_fingerprint_mismatch_only_warns(self):
        diff = diff_payloads(
            payload(fingerprint="a" * 64), payload(fingerprint="b" * 64)
        )
        assert diff.warnings and not diff.has_regressions

    def test_improvements_reported(self):
        diff = diff_payloads(
            payload(op_speedup=2.0), payload(op_speedup=4.0)
        )
        assert "converted_ops/speedup" in [
            d.series for d in diff.improvements
        ]

    def test_default_threshold_is_twenty_percent(self):
        assert DEFAULT_THRESHOLD == 0.20


class TestHistoryStore:
    def test_append_load_round_trip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        first, second = payload(), payload(featurize_rate=120_000.0)
        append_history(first, path)
        append_history(second, path)
        entries = load_history(path)
        assert len(entries) == 2
        assert entries[0] == json.loads(json.dumps(first))
        assert (flatten_series(entries[1])
                ["featurize/vectorized_packets_per_sec"] == 120_000.0)

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history(payload(), path)
        with path.open("a") as handle:
            handle.write('{"benchmark": "perf-ba')  # killed mid-append
        assert len(load_history(path)) == 1

    def test_mid_file_damage_raises_with_line_number(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history(payload(), path)
        with path.open("a") as handle:
            handle.write("garbage\n")
        append_history(payload(), path)
        with pytest.raises(ValueError, match=":2:"):
            load_history(path)

    def test_non_object_entry_raises(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="not an object"):
            load_history(path)

    def test_append_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "hist.jsonl"
        append_history(payload(), path)
        assert len(load_history(path)) == 1


class TestRenderers:
    def test_perf_diff_verdict_names_regressed_series(self):
        diff = diff_payloads(
            payload(featurize_rate=100_000.0),
            payload(featurize_rate=50_000.0),
        )
        text = render_perf_diff(diff)
        assert "REGRESSED" in text
        assert "featurize/vectorized_packets_per_sec" in text
        assert "regression(s)" in text.splitlines()[-1]

    def test_perf_diff_clean_verdict(self):
        text = render_perf_diff(diff_payloads(payload(), payload()))
        assert "perf-diff: clean" in text.splitlines()[-1]

    def test_history_table_newest_last(self):
        older = payload(featurize_rate=90_000.0)
        newer = payload(featurize_rate=110_000.0)
        newer["provenance"]["timestamp"] = "2026-08-09T00:00:00+00:00"
        text = render_history([older, newer])
        lines = text.splitlines()
        assert "2026-08-08" in lines[-2]
        assert "2026-08-09" in lines[-1]
        assert "110,000" in lines[-1]

    def test_history_series_filter(self):
        text = render_history([payload()], series="NprintEncode")
        assert "converted_ops/NprintEncode/speedup" in text

    def test_history_limit(self):
        entries = [payload() for _ in range(5)]
        text = render_history(entries, limit=2)
        assert len(text.splitlines()) == 4  # header + rule + 2 rows

    def test_empty_history(self):
        assert "empty" in render_history([])
        assert "no series match" in render_history(
            [payload()], series="nonexistent"
        )
