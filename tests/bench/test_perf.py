"""Tests for the performance baseline (repro.bench.perf).

One quick pass (``repeat=1``, no cells measurement) checks the payload
shape, the byte-equality contract on the timed arrays, and that the
batched paths are not slower in aggregate -- the committed
``BENCH_perf.json`` numbers come from the full CLI run.
"""

from repro.bench.perf import run_perf_benchmark


class TestPerfBenchmark:
    payload = None

    @classmethod
    def setup_class(cls):
        cls.payload = run_perf_benchmark(repeat=1, cells_algorithm=None)

    def test_workload_section(self):
        workload = self.payload["workload"]
        assert workload["dataset"] == "F0"
        assert workload["packets"] > 0
        assert workload["flows"] > 0

    def test_converted_ops_cover_every_batch_declaration(self):
        from repro.core.operations import OPERATIONS

        declared = {
            name for name, op in OPERATIONS.items()
            if op.batch is not None
        }
        assert set(self.payload["converted_ops"]["ops"]) == declared

    def test_timed_arrays_stay_byte_equal(self):
        for name, row in self.payload["converted_ops"]["ops"].items():
            assert row["byte_equal"] is True, name

    def test_aggregate_speedup_present(self):
        converted = self.payload["converted_ops"]
        assert converted["total_scalar_seconds"] > 0
        assert converted["total_batch_seconds"] > 0
        assert converted["speedup"] > 0

    def test_featurize_section(self):
        featurize = self.payload["featurize"]
        assert featurize["packets"] == self.payload["workload"]["packets"]
        assert featurize["scalar_packets_per_sec"] > 0
        assert featurize["vectorized_packets_per_sec"] > 0

    def test_cells_section_skipped_when_disabled(self):
        assert "cells" not in self.payload
