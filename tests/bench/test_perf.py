"""Tests for the performance baseline (repro.bench.perf).

One quick pass (``repeat=1``, no cells measurement) checks the payload
shape, the byte-equality contract on the timed arrays, and that the
batched paths are not slower in aggregate -- the committed
``BENCH_perf.json`` numbers come from the full CLI run.
"""

import numpy as np
import pytest

from repro.bench.perf import (
    PAYLOAD_SCHEMA,
    _best_of,
    collect_provenance,
    run_perf_benchmark,
)


class TestPerfBenchmark:
    payload = None

    @classmethod
    def setup_class(cls):
        cls.payload = run_perf_benchmark(repeat=1, cells_algorithm=None)

    def test_workload_section(self):
        workload = self.payload["workload"]
        assert workload["dataset"] == "F0"
        assert workload["packets"] > 0
        assert workload["flows"] > 0

    def test_converted_ops_cover_every_batch_declaration(self):
        from repro.core.operations import OPERATIONS

        declared = {
            name for name, op in OPERATIONS.items()
            if op.batch is not None
        }
        assert set(self.payload["converted_ops"]["ops"]) == declared

    def test_timed_arrays_stay_byte_equal(self):
        for name, row in self.payload["converted_ops"]["ops"].items():
            assert row["byte_equal"] is True, name

    def test_aggregate_speedup_present(self):
        converted = self.payload["converted_ops"]
        assert converted["total_scalar_seconds"] > 0
        assert converted["total_batch_seconds"] > 0
        assert converted["speedup"] > 0

    def test_featurize_section(self):
        featurize = self.payload["featurize"]
        assert featurize["packets"] == self.payload["workload"]["packets"]
        assert featurize["scalar_packets_per_sec"] > 0
        assert featurize["vectorized_packets_per_sec"] > 0

    def test_cells_section_skipped_when_disabled(self):
        assert "cells" not in self.payload

    def test_provenance_block(self):
        provenance = self.payload["provenance"]
        assert provenance["schema"] == PAYLOAD_SCHEMA
        assert len(provenance["workload_fingerprint"]) == 64
        assert provenance["timestamp"].startswith("20")
        assert provenance["numpy"] == np.__version__


class TestProvenance:
    def test_fingerprint_ignores_repeat(self):
        base = {"dataset": "F0", "packets": 100, "repeat": 1}
        more = dict(base, repeat=5)
        assert (collect_provenance(base)["workload_fingerprint"]
                == collect_provenance(more)["workload_fingerprint"])

    def test_fingerprint_tracks_the_workload(self):
        a = collect_provenance({"dataset": "F0", "packets": 100})
        b = collect_provenance({"dataset": "F0", "packets": 200})
        assert a["workload_fingerprint"] != b["workload_fingerprint"]


class TestBestOf:
    def test_returns_first_runs_output(self):
        outputs = [np.array([1, 2]), np.array([1, 2]), np.array([1, 2])]
        runs = iter(outputs)
        _, result = _best_of(lambda: next(runs), repeat=3)
        assert result is outputs[0]

    def test_flaky_function_raises_naming_the_label(self):
        calls = iter([np.array([1, 2]), np.array([9, 9])])
        with pytest.raises(RuntimeError, match="FlakyOp"):
            _best_of(lambda: next(calls), repeat=2, label="FlakyOp")

    def test_dict_outputs_compared_recursively(self):
        calls = iter([
            {"X": np.array([1.0]), "y": np.array([0])},
            {"X": np.array([2.0]), "y": np.array([0])},
        ])
        with pytest.raises(RuntimeError):
            _best_of(lambda: next(calls), repeat=2)

    def test_shape_change_is_a_difference(self):
        calls = iter([np.zeros(3), np.zeros(4)])
        with pytest.raises(RuntimeError):
            _best_of(lambda: next(calls), repeat=2)
