"""Acceptance tests for planned matrix execution.

The tentpole claim: ``run_matrix(plan=...)`` materializes every
proven-shared featurization prefix exactly once per dataset (observable
via the plan metrics and ``plan_stage`` span attributes) and produces
results identical to the unplanned path.
"""

import pytest

from repro.analysis.planner import build_matrix_plan
from repro.bench.runner import BenchmarkRunner
from repro.core import ExecutionEngine
from repro.core.errors import TemplateDiagnosticError
from repro.obs import METRICS, RingBufferSink, get_tracer
from repro.obs import metrics as metric_names


@pytest.fixture(autouse=True)
def fresh_cache():
    ExecutionEngine.shared_cache.clear()
    yield
    ExecutionEngine.shared_cache.clear()


def _counter(name):
    return METRICS.counter(name).value


def _record_fields(store):
    return sorted(
        (
            r.algorithm, r.train_dataset, r.test_dataset, r.mode,
            r.precision, r.recall, r.f1, r.accuracy, r.n_train, r.n_test,
        )
        for r in store.results
    )


class TestPlannedMatrix:
    def test_shared_prefixes_once_per_dataset_and_equal_results(self):
        plan = build_matrix_plan(["A13", "A14"], ["F0", "F1"])
        n_stages = len(plan.stages)
        n_shared = len(plan.shared_stages)
        assert n_shared == 3  # Groupby + Labels + AttackIds

        sink = RingBufferSink(capacity=None)
        tracer = get_tracer()
        tracer.add_sink(sink)
        before_executed = _counter(metric_names.PLAN_STAGES_EXECUTED)
        before_shared = _counter(metric_names.PLAN_STAGES_SHARED)
        before_primed = _counter(metric_names.PLAN_DATASETS_PRIMED)
        runner = BenchmarkRunner()
        try:
            planned = runner.run_matrix(
                ["A13", "A14"], ["F0", "F1"], plan=plan
            )
        finally:
            tracer.remove_sink(sink)
        assert len(planned.results) == 8 and not planned.failures

        # every plan stage materialized exactly once per dataset
        assert (
            _counter(metric_names.PLAN_STAGES_EXECUTED) - before_executed
            == n_stages * 2
        )
        assert (
            _counter(metric_names.PLAN_STAGES_SHARED) - before_shared
            == n_shared * 2
        )
        assert (
            _counter(metric_names.PLAN_DATASETS_PRIMED) - before_primed == 2
        )

        # the shared Groupby prefix computed exactly once per dataset,
        # inside the plan span, fresh (not cache-served), and advertises
        # how many consumers it deduplicated
        groupby = [
            e for e in sink.events()
            if e["kind"] == "span"
            and e["name"] == "step:Groupby"
            and e["attrs"].get("plan_stage")
        ]
        assert len(groupby) == 2
        for span in groupby:
            assert span["attrs"]["dedup_hits"] == 1
            assert not span["attrs"].get("cached")
        # ...and no cell ever re-executed it: every later Groupby step
        # span in the planned run is a cache hit
        cell_groupby = [
            e for e in sink.events()
            if e["kind"] == "span"
            and e["name"] == "step:Groupby"
            and not e["attrs"].get("plan_stage")
        ]
        assert cell_groupby, "cells must still request the prefix"
        assert all(e["attrs"].get("cached") for e in cell_groupby)

        # identical results from a cold, unplanned run
        ExecutionEngine.shared_cache.clear()
        unplanned = BenchmarkRunner().run_matrix(["A13", "A14"], ["F0", "F1"])
        assert _record_fields(planned) == _record_fields(unplanned)

    def test_stale_plan_refused_before_any_cell(self):
        plan = build_matrix_plan(["A13"], ["F0"])
        plan.template_fingerprints["A13"] = "0" * 64
        runner = BenchmarkRunner()
        with pytest.raises(TemplateDiagnosticError):
            runner.run_matrix(["A13"], ["F0"], plan=plan)
        assert len(runner.store.results) == 0

    def test_plan_restricted_to_requested_subset(self):
        plan = build_matrix_plan(["A13", "A14"], ["F0", "F1"])
        before = _counter(metric_names.PLAN_DATASETS_PRIMED)
        runner = BenchmarkRunner()
        store = runner.run_matrix(["A13"], ["F0"], plan=plan)
        assert _counter(metric_names.PLAN_DATASETS_PRIMED) - before == 1
        assert len(store.results) == 1  # same-dataset cell only
