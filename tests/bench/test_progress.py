"""Tests for live matrix progress (repro.bench.progress).

Event monotonicity and accounting over a real small matrix, failure
counting under the deterministic fault harness, resume accounting, the
TTY renderer's two output modes, and the campaign-scoped metric
deltas.
"""

import io

import pytest

from repro.bench import BenchmarkRunner, MatrixProgress, TtyProgressRenderer
from repro.bench.progress import format_progress
from repro.faults import FaultPlan, active


class ListSink:
    def __init__(self):
        self.events = []
        self.closed = False

    def emit(self, event):
        self.events.append(event)

    def close(self):
        self.closed = True


def run_small_matrix(progress, *, retries=0, **matrix_kwargs):
    runner = BenchmarkRunner(sleep=lambda s: None, retries=retries)
    runner.run_matrix(["A14"], ["F0", "F1"], progress=progress,
                      **matrix_kwargs)
    return runner


class TestProgressEvents:
    def test_events_advance_monotonically(self):
        sink = ListSink()
        run_small_matrix(MatrixProgress([sink]))
        events = sink.events
        assert len(events) == 4  # 2 same + 2 cross cells
        assert [e["done"] for e in events] == [1, 2, 3, 4]
        for event in events:
            assert event["kind"] == "progress"
            assert event["total"] == 4
            assert event["done"] <= event["total"]
            assert (event["done"]
                    == event["ok"] + event["failed"] + event["resumed"])
            assert event["outcome"] == "ok"
            assert event["elapsed_seconds"] >= 0
        final = events[-1]
        assert final["done"] == final["total"] == 4
        assert final["ok"] == 4 and final["failed"] == 0

    def test_rate_and_eta_populate(self):
        sink = ListSink()
        run_small_matrix(MatrixProgress([sink]))
        final = sink.events[-1]
        assert final["cells_per_hour"] > 0
        assert final["eta_seconds"] == 0.0  # nothing left
        assert sink.events[0]["eta_seconds"] > 0

    def test_cache_hit_rate_is_campaign_scoped(self):
        # the cross cells reuse the same-dataset featurizations, so the
        # campaign must end with a nonzero in-campaign hit rate
        sink = ListSink()
        run_small_matrix(MatrixProgress([sink]))
        assert sink.events[-1]["cache_hit_rate"] > 0

    def test_failure_counts_under_the_fault_harness(self):
        sink = ListSink()
        progress = MatrixProgress([sink])
        with active(FaultPlan.parse("featurize:0.45", seed=7)):
            run_small_matrix(progress, retries=2, keep_going=True)
        events = sink.events
        final = events[-1]
        assert final["done"] == final["total"] == 4
        assert final["failed"] > 0
        assert final["ok"] + final["failed"] == 4
        assert final["retried"] > 0
        assert final["faults_injected"] > 0
        failed = [e["failed"] for e in events]
        assert failed == sorted(failed)  # failures never decrease
        assert {e["outcome"] for e in events} == {"ok", "failed"}

    def test_resumed_cells_are_accounted(self, tmp_path):
        journal = tmp_path / "cp.jsonl"
        run_small_matrix(MatrixProgress(), checkpoint=str(journal))
        sink = ListSink()
        run_small_matrix(MatrixProgress([sink]), resume=str(journal))
        final = sink.events[-1]
        assert final["done"] == 4
        assert final["resumed"] == 4
        assert all(e["outcome"] == "resumed" for e in sink.events)
        # resumed skips execute nothing, so no rate is measurable
        assert final["cells_per_hour"] is None
        assert final["eta_seconds"] is None


class TestMatrixProgressUnit:
    def test_record_rejects_unknown_outcome(self):
        progress = MatrixProgress()
        progress.begin(1)
        with pytest.raises(ValueError):
            progress.record(("A14", "F0", "F0"), "exploded")

    def test_begin_resets_counts(self):
        progress = MatrixProgress()
        progress.begin(2)
        progress.record(("A14", "F0", "F0"), "ok")
        progress.begin(3)
        assert progress.done == 0 and progress.total == 3
        assert not progress.snapshot().cells_per_hour

    def test_snapshot_before_any_lookup_has_no_hit_rate(self):
        progress = MatrixProgress()
        progress.begin(1)
        assert progress.snapshot().cache_hit_rate is None

    def test_close_closes_closeable_sinks(self):
        sink = ListSink()
        progress = MatrixProgress([sink, object()])  # bare object: no close
        progress.close()
        assert sink.closed

    def test_events_flow_to_every_sink(self):
        first, second = ListSink(), ListSink()
        progress = MatrixProgress([first])
        progress.add_sink(second)
        progress.begin(1)
        progress.record(("A14", "F0", "F0"), "ok")
        assert len(first.events) == len(second.events) == 1


class TestTtyRenderer:
    def event(self, **overrides):
        base = {
            "kind": "progress", "total": 4, "done": 1, "ok": 1,
            "failed": 0, "resumed": 0, "retried": 0,
            "faults_injected": 0, "elapsed_seconds": 1.0,
            "cells_per_hour": 3600.0, "eta_seconds": 3.0,
            "cache_hit_rate": None, "plan_stages_shared": 0,
            "cell": "A14/F0/F0", "outcome": "ok",
        }
        base.update(overrides)
        return base

    def test_piped_output_is_line_per_event(self):
        stream = io.StringIO()
        renderer = TtyProgressRenderer(stream)
        renderer.emit(self.event())
        renderer.emit(self.event(done=2, ok=2))
        renderer.close()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("cells 1/4")
        assert "\r" not in stream.getvalue()

    def test_tty_output_redraws_in_place(self):
        class Tty(io.StringIO):
            def isatty(self):
                return True

        stream = Tty()
        renderer = TtyProgressRenderer(stream)
        renderer.emit(self.event())
        renderer.emit(self.event(done=2, ok=2))
        assert stream.getvalue().count("\r") == 2
        renderer.close()
        assert stream.getvalue().endswith("\n")

    def test_non_progress_events_ignored(self):
        stream = io.StringIO()
        TtyProgressRenderer(stream).emit({"kind": "span", "name": "x"})
        assert stream.getvalue() == ""

    def test_format_progress_line(self):
        line = format_progress(self.event(
            failed=1, retried=2, cache_hit_rate=0.5, eta_seconds=90.0
        ))
        assert "cells 1/4 (25%)" in line
        assert "failed=1" in line
        assert "retried=2" in line
        assert "cache 50%" in line
        assert "eta 1.5m" in line
