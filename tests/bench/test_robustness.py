"""Tests for multi-seed robustness analysis."""

import pytest

from repro.bench.robustness import (
    SeedRobustness,
    evaluate_across_seeds,
    significantly_better,
)


class TestSeedRobustnessStats:
    def test_mean_std_ci(self):
        cell = SeedRobustness("A14", "F0", "F0", "precision",
                              (0.9, 1.0, 0.95, 0.85))
        assert cell.mean == pytest.approx(0.925)
        assert cell.std > 0
        low, high = cell.confidence_interval()
        assert low < cell.mean < high

    def test_single_value_has_zero_std(self):
        cell = SeedRobustness("A14", "F0", "F0", "precision", (0.9,))
        assert cell.std == 0.0
        low, high = cell.confidence_interval()
        assert low == high == pytest.approx(0.9)

    def test_describe_is_readable(self):
        cell = SeedRobustness("A14", "F0", "F1", "recall", (0.5, 0.6))
        text = cell.describe()
        assert "A14 F0->F1 recall" in text
        assert "95% CI" in text


class TestEvaluateAcrossSeeds:
    def test_collects_one_value_per_seed(self):
        cell = evaluate_across_seeds("A13", "F0", seeds=(0, 1, 2))
        assert len(cell.values) == 3
        assert all(0.0 <= v <= 1.0 for v in cell.values)

    def test_supervised_same_dataset_is_stable(self):
        cell = evaluate_across_seeds("A14", "F0", seeds=(0, 1, 2))
        assert cell.std < 0.1  # splits move, quality should not collapse
        assert cell.mean > 0.9

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            evaluate_across_seeds("A14", "F0", seeds=())


class TestSignificance:
    def test_clear_separation(self):
        strong = SeedRobustness("A", "F0", "F0", "precision",
                                (0.95, 0.96, 0.97))
        weak = SeedRobustness("B", "F0", "F0", "precision",
                              (0.50, 0.52, 0.48))
        assert significantly_better(strong, weak)
        assert not significantly_better(weak, strong)

    def test_overlapping_distributions(self):
        a = SeedRobustness("A", "F0", "F0", "precision", (0.90, 0.80, 0.85))
        b = SeedRobustness("B", "F0", "F0", "precision", (0.88, 0.82, 0.84))
        assert not significantly_better(a, b)

    def test_zero_variance_falls_back_to_means(self):
        a = SeedRobustness("A", "F0", "F0", "precision", (0.9,))
        b = SeedRobustness("B", "F0", "F0", "precision", (0.8,))
        assert significantly_better(a, b)

    def test_metric_mismatch_rejected(self):
        a = SeedRobustness("A", "F0", "F0", "precision", (0.9,))
        b = SeedRobustness("B", "F0", "F0", "recall", (0.8,))
        with pytest.raises(ValueError):
            significantly_better(a, b)
