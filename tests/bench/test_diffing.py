"""Tests for result-store diffing."""

import pytest

from repro.bench.diffing import diff_stores, render_diff
from repro.bench.results import EvaluationResult, ResultStore


def result(algorithm="A10", train="F0", test="F0", precision=0.9, recall=0.8):
    return EvaluationResult(
        algorithm=algorithm, train_dataset=train, test_dataset=test,
        mode="same" if train == test else "cross",
        granularity="CONNECTION", precision=precision, recall=recall,
        f1=0.85, accuracy=0.9, n_train=100, n_test=40,
    )


class TestDiff:
    def test_identical_stores_clean(self):
        store = ResultStore([result(), result("A14")])
        diff = diff_stores(store, store)
        assert diff.is_clean
        assert render_diff(diff) == "identical: no cells changed"

    def test_detects_regression(self):
        before = ResultStore([result(precision=0.9)])
        after = ResultStore([result(precision=0.5)])
        diff = diff_stores(before, after)
        assert len(diff.regressions) == 1
        assert diff.regressions[0].delta == pytest.approx(-0.4)
        assert not diff.improvements

    def test_detects_improvement_and_metric(self):
        before = ResultStore([result(recall=0.5)])
        after = ResultStore([result(recall=0.9)])
        diff = diff_stores(before, after)
        assert len(diff.improvements) == 1
        assert diff.improvements[0].metric == "recall"

    def test_membership_changes(self):
        before = ResultStore([result("A10"), result("A13")])
        after = ResultStore([result("A10"), result("A14")])
        diff = diff_stores(before, after)
        assert diff.only_before == [("A13", "F0", "F0")]
        assert diff.only_after == [("A14", "F0", "F0")]
        assert not diff.is_clean

    def test_tolerance_suppresses_noise(self):
        before = ResultStore([result(precision=0.9)])
        after = ResultStore([result(precision=0.9 + 1e-12)])
        assert diff_stores(before, after).is_clean

    def test_render_lists_movements(self):
        before = ResultStore([result(precision=0.9), result("A14", precision=0.4)])
        after = ResultStore([result(precision=0.2), result("A14", precision=0.8)])
        text = render_diff(diff_stores(before, after))
        assert "1 down, 1 up" in text
        assert "v A10" in text
        assert "^ A14" in text

    def test_determinism_against_itself(self, tmp_path):
        """A saved store diffed against a reload of itself is clean."""
        store = ResultStore([result(), result("A14", "F0", "F1")])
        path = tmp_path / "store.json"
        store.save_json(path)
        assert diff_stores(store, ResultStore.load_json(path)).is_clean
