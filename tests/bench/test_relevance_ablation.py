"""Tests for feature relevance and the faithfulness ablation."""

import numpy as np
import pytest

from repro.bench.ablation import (
    FaithfulnessAblation,
    measure_rewrite_damage,
    render_ablation,
)
from repro.bench.relevance import feature_relevance, top_features


class TestFeatureRelevance:
    @pytest.fixture(scope="class")
    def relevance(self):
        return feature_relevance("A10", "F1", n_estimators=8)

    def test_rows_are_attacks_of_the_dataset(self, relevance):
        from repro.datasets import DATASETS

        assert set(relevance.row_labels) <= set(DATASETS["F1"].attacks)
        assert relevance.row_labels  # at least one attack measurable

    def test_columns_are_named_features(self, relevance):
        assert "syn_rate" in relevance.col_labels
        assert len(relevance.col_labels) == 10

    def test_importances_normalised(self, relevance):
        for i in range(len(relevance.row_labels)):
            row = np.nan_to_num(relevance.values[i])
            assert abs(row.sum() - 1.0) < 1e-6 or row.sum() == 0

    def test_top_features_ordering(self, relevance):
        attack = relevance.row_labels[0]
        best = top_features(relevance, attack, k=3)
        assert len(best) == 3
        row = relevance.values[relevance.row_labels.index(attack)]
        values = [row[relevance.col_labels.index(name)] for name in best]
        assert values == sorted(values, reverse=True)

    def test_generic_names_for_unnamed_algorithms(self):
        relevance = feature_relevance("A14", "F1", n_estimators=5)
        assert all(name.startswith("f") for name in relevance.col_labels)


class TestFaithfulnessAblation:
    def test_measures_packet_dataset(self):
        row = measure_rewrite_damage("P0")
        assert row.n_connections > 100
        assert 0.0 <= row.packet_label_fraction <= 1.0
        assert row.rewritten_label_fraction >= row.packet_label_fraction

    def test_mitm_creates_mixed_connections(self):
        # the interception labelling guarantees the paper's mixed-label
        # situation actually occurs in the MitM datasets
        assert measure_rewrite_damage("P0").n_mixed_connections > 0

    def test_properties(self):
        row = FaithfulnessAblation(
            dataset="X", n_connections=10, n_mixed_connections=3,
            packet_label_fraction=0.2, rewritten_label_fraction=0.5,
        )
        assert row.mixed_fraction == pytest.approx(0.3)
        assert row.label_inflation == pytest.approx(0.3)

    def test_render(self):
        text = render_ablation([measure_rewrite_damage("P0")])
        assert "P0" in text
        assert "rewritten" in text
