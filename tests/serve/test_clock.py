"""The injectable clocks: virtual time must behave like time."""

import threading

import pytest

from repro.serve import Clock, MonotonicClock, ReplayClock


class TestReplayClock:
    def test_starts_where_told(self):
        assert ReplayClock().now() == 0.0
        assert ReplayClock(start=100.0).now() == 100.0

    def test_sleep_advances_instead_of_waiting(self):
        clock = ReplayClock()
        clock.sleep(12.5)
        assert clock.now() == 12.5

    def test_advance_accumulates(self):
        clock = ReplayClock()
        clock.advance(1.0)
        clock.advance(2.0)
        assert clock.now() == 3.0

    def test_never_backwards(self):
        clock = ReplayClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_thread_safe_advance(self):
        clock = ReplayClock()
        workers = [
            threading.Thread(
                target=lambda: [clock.advance(0.001) for _ in range(1000)]
            )
            for _ in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert clock.now() == pytest.approx(4.0)


class TestMonotonicClock:
    def test_is_a_clock(self):
        assert isinstance(MonotonicClock(), Clock)

    def test_now_moves_forward(self):
        clock = MonotonicClock()
        first = clock.now()
        clock.sleep(0.01)
        assert clock.now() > first

    def test_negative_sleep_is_a_noop(self):
        MonotonicClock().sleep(-5.0)  # must not raise or block
