"""Property tests for ``--sessions N`` concurrent multi-session serving.

The contract is determinism, not throughput: N pool sessions scoring
the same chunk must each produce outputs byte-equal to N sequential
single-session runs, across chunk sizes, under fault injection, with
zero silent loss per session.  Admission is gated on the
concurrency-safety analyzer -- an unproven template is refused at
startup with a visible span attribute and counter, never run wrong.
"""

import numpy as np
import pytest

from repro.core.errors import TemplateError
from repro.faults import FaultPlan, active
from repro.obs import METRICS, RingBufferSink, get_tracer
from repro.obs import metrics as metric_names
from repro.serve import ReplayClock, ServeConfig, ServeDaemon

# chunk sizes: many tiny chunks, uneven mid-size chunks, one chunk
# spanning the whole trace
CHUNK_GRID = [1.0, 7.3, 1e6]

# the analyzer must prove this racy: the stream body publishes its
# carried state into a module global (L052)
_LEAKED_STATE: dict = {}


def make_daemon(trace, sessions=1, template=None, **overrides):
    defaults = dict(
        chunk_seconds=5.0,
        pps=0.0,
        retries=3,
        backoff_base=0.05,
        seed=0,
        outputs=["X", "y"],
        sessions=sessions,
    )
    defaults.update(overrides)
    return ServeDaemon(
        trace,
        config=ServeConfig(**defaults),
        template=template,
        clock=ReplayClock(),
        dataset_id="serve-test",
    )


def capture(fn):
    sink = RingBufferSink(capacity=None)
    tracer = get_tracer()
    tracer.add_sink(sink)
    try:
        fn()
    finally:
        tracer.remove_sink(sink)
    return [e for e in sink.events() if e.get("kind") == "span"]


def assert_outputs_equal(mine, reference, context=""):
    assert set(mine) == set(reference), context
    for name, value in reference.items():
        assert np.array_equal(
            np.asarray(mine[name]), np.asarray(value)
        ), f"{context}:{name}"


class TestByteEquality:
    @pytest.mark.parametrize("chunk_seconds", CHUNK_GRID)
    def test_sessions_equal_sequential_runs(
        self, serve_trace, chunk_seconds
    ):
        sessions = 3
        # reference: N independent single-session runs (identical by
        # construction -- the daemon is deterministic), each verified
        references = []
        for _ in range(sessions):
            daemon = make_daemon(serve_trace, chunk_seconds=chunk_seconds)
            assert daemon.run().ok
            assert all(daemon.verify_against_offline().values())
            references.append(daemon.collected())
        concurrent = make_daemon(
            serve_trace, sessions=sessions, chunk_seconds=chunk_seconds
        )
        report = concurrent.run()
        assert report.ok, report.reason
        assert report.packets_lost == 0
        assert all(concurrent.verify_against_offline().values())
        for index in range(sessions):
            assert_outputs_equal(
                concurrent.collected(index),
                references[index],
                context=f"session {index} chunk={chunk_seconds}",
            )

    @pytest.mark.parametrize("chunk_seconds", CHUNK_GRID)
    def test_sessions_survive_fault_injection(
        self, serve_trace, chunk_seconds
    ):
        plan = FaultPlan.parse("score_chunk:0.4", seed=13)
        single = make_daemon(
            serve_trace, chunk_seconds=chunk_seconds, retries=4
        )
        with active(plan) as injector:
            single_report = single.run()
            fired_single = len(injector.fired)
        assert single_report.ok, single_report.reason
        reference = single.collected()

        plan = FaultPlan.parse("score_chunk:0.4", seed=13)
        concurrent = make_daemon(
            serve_trace, sessions=4, chunk_seconds=chunk_seconds,
            retries=4,
        )
        with active(plan) as injector:
            report = concurrent.run()
            fired_concurrent = len(injector.fired)
        assert report.ok, report.reason
        # the control thread draws one fault per attempt regardless of
        # session count, so the fault sequence -- and with it any
        # visible quarantine loss -- is session-invariant
        assert fired_concurrent == fired_single
        assert report.packets_lost == single_report.packets_lost
        assert all(concurrent.verify_against_offline().values())
        for index in range(4):
            assert_outputs_equal(
                concurrent.collected(index), reference,
                context=f"faulted session {index}",
            )

    def test_zero_silent_loss_per_session_under_quarantine(
        self, serve_trace
    ):
        # retries=0 forces quarantines; surviving rows must still be
        # byte-equal in every session (loss is visible, never silent)
        plan = FaultPlan.parse("score_chunk:0.5", seed=5)
        concurrent = make_daemon(
            serve_trace, sessions=2, retries=0, backoff_base=0.01
        )
        with active(plan) as injector:
            report = concurrent.run()
            assert injector.fired
        assert report.chunks_quarantined > 0
        assert report.packets_lost > 0
        assert all(concurrent.verify_against_offline().values())


class TestSessionSpans:
    def test_score_chunk_spans_carry_session_ids(self, serve_trace):
        daemon = make_daemon(serve_trace, sessions=3)
        spans = capture(lambda: daemon.run())
        scored = [s for s in spans if s["name"] == "score_chunk"]
        assert scored
        by_session: dict = {}
        for span in scored:
            by_session.setdefault(span["attrs"]["session"], []).append(span)
        assert set(by_session) == {0, 1, 2}
        # every session scored every chunk
        chunk_sets = {
            session: sorted(s["attrs"]["chunk"] for s in spans_)
            for session, spans_ in by_session.items()
        }
        assert chunk_sets[0] == chunk_sets[1] == chunk_sets[2]

    def test_single_session_spans_say_session_zero(self, serve_trace):
        daemon = make_daemon(serve_trace)
        spans = capture(lambda: daemon.run())
        scored = [s for s in spans if s["name"] == "score_chunk"]
        assert scored
        assert {s["attrs"]["session"] for s in scored} == {0}

    def test_serve_span_reports_session_count(self, serve_trace):
        daemon = make_daemon(serve_trace, sessions=2)
        spans = capture(lambda: daemon.run())
        serve = next(s for s in spans if s["name"] == "serve")
        assert serve["attrs"]["sessions"] == 2
        assert METRICS.gauge(metric_names.SERVE_SESSIONS).value == 2


class TestAdmissionGate:
    def _racy_template(self):
        from repro.core.operations import (
            OPERATIONS,
            register_operation,
            register_stream,
        )
        from repro.core.types import ValueType

        def racy_fn(inputs, params):
            return inputs[0].length.astype(np.float64)

        def racy_stream(table, params, state):
            _LEAKED_STATE["live"] = state
            return table.length.astype(np.float64), state

        register_operation(
            "RacySessionProbe", (ValueType.PACKETS,),
            ValueType.FEATURES, stream="stateless",
        )(racy_fn)
        register_stream("RacySessionProbe")(racy_stream)
        template = [
            {"func": "RacySessionProbe", "input": None, "output": "X"},
            {"func": "Labels", "input": None, "output": "y"},
        ]
        return template, lambda: OPERATIONS.pop("RacySessionProbe", None)

    def test_racy_template_refused_at_startup(self, serve_trace):
        template, cleanup = self._racy_template()
        try:
            daemon = make_daemon(
                serve_trace, sessions=2, template=template
            )
            before = METRICS.counter(
                metric_names.CONCURRENCY_REFUSALS, ""
            ).value
            result: dict = {}
            spans = capture(
                lambda: result.setdefault("report", daemon.run())
            )
            after = METRICS.counter(
                metric_names.CONCURRENCY_REFUSALS, ""
            ).value
            assert after > before
            serve = next(s for s in spans if s["name"] == "serve")
            assert "RacySessionProbe" in (
                serve["attrs"]["concurrency_refused"]
            )
            report = result["report"]
            assert report.ok is False
            assert "concurrent-safe" in report.reason
        finally:
            cleanup()

    def test_racy_template_allowed_single_session(self, serve_trace):
        # the gate only guards fan-out: one session is the PR 9
        # contract and racy-under-concurrency ops still serve fine
        template, cleanup = self._racy_template()
        try:
            daemon = make_daemon(
                serve_trace, sessions=1, template=template
            )
            report = daemon.run()
            assert report.ok, report.reason
        finally:
            cleanup()

    def test_sessions_below_one_rejected(self, serve_trace):
        with pytest.raises(ValueError, match="sessions"):
            make_daemon(serve_trace, sessions=0)


class TestReloadAndWatchdog:
    def test_reload_preserves_equality(self, serve_trace):
        class ReloadOnce(ServeDaemon):
            def _finish_chunk(self, chunk, outs, anomalies):
                super()._finish_chunk(chunk, outs, anomalies)
                if self._scored == 2 and not self._reloads:
                    self.request_reload()

        reference = make_daemon(serve_trace)
        assert reference.run().ok
        daemon = ReloadOnce(
            serve_trace,
            config=ServeConfig(
                chunk_seconds=5.0, outputs=["X", "y"], sessions=2,
                seed=0,
            ),
            clock=ReplayClock(),
            dataset_id="serve-test",
        )
        report = daemon.run()
        assert report.ok and report.reloads == 1
        assert all(daemon.verify_against_offline().values())
        for index in range(2):
            assert_outputs_equal(
                daemon.collected(index), reference.collected(),
                context=f"reloaded session {index}",
            )
