"""Shared fixtures for serve-daemon tests.

Serve tests assert on metric *deltas* and on byte-equality of outputs,
both of which are poisoned by state leaking between tests: the metrics
registry is process-global, and a stray installed fault injector would
fire into an unrelated test.  The autouse fixtures below make the
hygiene explicit -- every test starts with an empty registry and no
active injector, and leaves none behind.
"""

import pytest

from repro.faults import uninstall
from repro.net.table import PacketTable
from repro.obs import get_metrics
from repro.traffic import AttackSpec, NetworkScenario


@pytest.fixture(autouse=True)
def clean_metrics():
    """Explicit registry hygiene: serve tests read absolute counters."""
    registry = get_metrics()
    registry.reset()
    yield registry
    registry.reset()


@pytest.fixture(autouse=True)
def no_leaked_injector():
    """No fault plan survives a test, even one that raised mid-run."""
    uninstall()
    yield
    uninstall()


@pytest.fixture(scope="session")
def serve_trace() -> PacketTable:
    """A small mixed trace shaped like the CI soak (one attack window)."""
    scenario = NetworkScenario(
        name="serve-test",
        device_counts={"workstation": 2, "camera": 1},
        duration=40.0,
        seed=7,
        attacks=(AttackSpec("port_scan", 0.4, 0.7, intensity=0.2),),
    )
    return scenario.generate()
