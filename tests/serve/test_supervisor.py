"""Stall detection: the heartbeat watchdog and the attempt deadline."""

import pytest

from repro.obs import METRICS
from repro.obs import metrics as metric_names
from repro.serve import ReplayClock, StallError, Watchdog, call_with_deadline


class TestWatchdog:
    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError, match="stall_seconds"):
            Watchdog(ReplayClock(), 0.0)

    def test_quiet_until_the_window_elapses(self):
        clock = ReplayClock()
        watchdog = Watchdog(clock, stall_seconds=5.0)
        assert not watchdog.poll()
        clock.advance(5.0)
        assert not watchdog.poll()  # exactly at the boundary: not yet
        clock.advance(0.1)
        assert watchdog.poll()
        assert watchdog.idle_seconds() == pytest.approx(5.1)

    def test_beat_rearms(self):
        clock = ReplayClock()
        watchdog = Watchdog(clock, stall_seconds=5.0)
        clock.advance(4.9)
        watchdog.beat()
        clock.advance(4.9)
        assert not watchdog.poll()

    def test_trip_counts_and_rearms(self):
        clock = ReplayClock()
        watchdog = Watchdog(clock, stall_seconds=5.0)
        clock.advance(6.0)
        assert watchdog.poll()
        assert watchdog.trip() == 1
        assert not watchdog.poll()  # re-armed by the trip
        assert watchdog.restarts == 1
        counter = METRICS.counter(metric_names.SERVE_WATCHDOG_RESTARTS)
        assert counter.value == 1

    def test_background_thread_observes_a_stall(self):
        clock = ReplayClock()
        watchdog = Watchdog(clock, stall_seconds=1.0)
        clock.advance(2.0)  # already stalled when the thread starts
        import threading

        stalled = threading.Event()
        handle = watchdog.start_thread(stalled.set, interval=0.01)
        try:
            assert stalled.wait(2.0), "watchdog thread never reported"
        finally:
            handle.stop()


class TestCallWithDeadline:
    def test_no_deadline_calls_inline(self):
        assert call_with_deadline(lambda: 42, None, "x") == 42
        assert call_with_deadline(lambda: 42, 0.0, "x") == 42

    def test_fast_call_returns_its_value(self):
        assert call_with_deadline(lambda: "done", 5.0, "x") == "done"

    def test_errors_propagate(self):
        def boom():
            raise ValueError("inner")

        with pytest.raises(ValueError, match="inner"):
            call_with_deadline(boom, 5.0, "x")

    def test_overrun_raises_stall_error(self):
        import time

        with pytest.raises(StallError, match="slow-thing"):
            call_with_deadline(
                lambda: time.sleep(5.0), 0.05, "slow-thing"
            )

    def test_stall_error_carries_the_budget(self):
        error = StallError(2.5, "score_chunk[3]")
        assert error.seconds == 2.5
        assert "score_chunk[3]" in str(error)
        assert "2.5s" in str(error)
