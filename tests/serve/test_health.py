"""The atomic status file and its readiness semantics."""

import json

import pytest

from repro.serve import ServeStatus


class TestServeStatus:
    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError, match="unknown serve state"):
            ServeStatus(state="zombie")

    def test_write_load_round_trip(self, tmp_path):
        status = ServeStatus(
            state="serving",
            uptime_seconds=12.5,
            dataset="F0",
            chunks_scored=7,
            chunks_quarantined=1,
            packets_ingested=800,
            packets_total=1361,
            queue_depth=2,
            replay_cursor=800,
            last_error="score: FaultInjected",
        )
        path = tmp_path / "status.json"
        status.write(path)
        assert ServeStatus.load(path) == status

    def test_write_is_atomic(self, tmp_path):
        path = tmp_path / "deep" / "status.json"
        ServeStatus(state="serving").write(path)  # creates the parent
        ServeStatus(state="stopped").write(path)
        assert not path.with_name(path.name + ".tmp").exists()
        assert json.loads(path.read_text())["state"] == "stopped"

    @pytest.mark.parametrize("state,ready", [
        ("starting", True),
        ("serving", True),
        ("reloading", True),
        ("draining", True),
        ("stopped", False),
    ])
    def test_ready_tracks_liveness(self, state, ready):
        assert ServeStatus(state=state).ready is ready

    def test_render_mentions_the_essentials(self):
        status = ServeStatus(
            state="serving",
            chunks_scored=7,
            chunks_quarantined=2,
            packets_total=100,
            checkpoint_chunk=5,
            last_error="ingest: OSError",
        )
        report = status.render()
        assert "serving" in report
        assert "chunks scored       7" in report
        assert "chunk 5" in report
        assert "ingest: OSError" in report

    def test_render_omits_an_empty_error(self):
        assert "last error" not in ServeStatus().render()
