"""Backpressure policies of the bounded ingest queue."""

import numpy as np
import pytest

from repro.net.table import PacketTable
from repro.obs import METRICS
from repro.obs import metrics as metric_names
from repro.serve import BoundedChunkQueue, Chunk


def make_chunk(window: int) -> Chunk:
    table = PacketTable.empty()
    return Chunk(table, window, row_start=window * 10)


class TestConstruction:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            BoundedChunkQueue(0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="drop-oldest"):
            BoundedChunkQueue(4, policy="teleport")


class TestBlockPolicy:
    def test_fifo_until_full(self):
        queue = BoundedChunkQueue(2, policy="block")
        assert queue.try_put(make_chunk(0)) == ("ok", None)
        assert queue.try_put(make_chunk(1)) == ("ok", None)
        assert queue.full
        assert queue.get().window == 0
        assert queue.get().window == 1
        assert queue.get() is None

    def test_full_queue_refuses_and_counts(self):
        queue = BoundedChunkQueue(1, policy="block")
        queue.try_put(make_chunk(0))
        status, evicted = queue.try_put(make_chunk(1))
        assert (status, evicted) == ("blocked", None)
        assert len(queue) == 1  # the refused chunk was NOT admitted
        blocked = METRICS.counter(metric_names.SERVE_QUEUE_BLOCKED)
        assert blocked.value == 1

    def test_refusal_drops_nothing(self):
        queue = BoundedChunkQueue(1, policy="block")
        queue.try_put(make_chunk(0))
        queue.try_put(make_chunk(1))
        dropped = METRICS.counter(metric_names.SERVE_CHUNKS_DROPPED)
        assert dropped.value == 0


class TestDropOldestPolicy:
    def test_evicts_the_oldest_and_returns_it(self):
        queue = BoundedChunkQueue(2, policy="drop-oldest")
        queue.try_put(make_chunk(0))
        queue.try_put(make_chunk(1))
        status, evicted = queue.try_put(make_chunk(2))
        assert status == "dropped"
        assert evicted.window == 0  # caller owns journaling this
        assert [queue.get().window, queue.get().window] == [1, 2]
        dropped = METRICS.counter(metric_names.SERVE_CHUNKS_DROPPED)
        assert dropped.value == 1


class TestDepthGauge:
    def test_tracks_every_put_and_get(self):
        queue = BoundedChunkQueue(4)
        gauge = METRICS.gauge(metric_names.SERVE_QUEUE_DEPTH)
        queue.try_put(make_chunk(0))
        queue.try_put(make_chunk(1))
        assert gauge.value == 2.0
        queue.get()
        assert gauge.value == 1.0
