"""Replay pacing and chunk assembly.

The assembler must reproduce *exactly* the window partition that
``repro.core.streaming.chunked`` yields for the same trace -- that
identity is what lets the daemon's outputs be compared byte-for-byte
against an offline ``run_stream``.
"""

import numpy as np
import pytest

from repro.core.streaming import chunked
from repro.faults import FaultPlan, FaultRule, active
from repro.obs import METRICS
from repro.obs import metrics as metric_names
from repro.serve import ChunkAssembler, ReplayClock, ReplaySource


class TestReplaySource:
    def test_nothing_due_at_start(self, serve_trace):
        source = ReplaySource(serve_trace, pps=10.0, clock=ReplayClock())
        assert source.due_count() == 0
        assert source.next_batch() is None

    def test_pacing_follows_the_clock(self, serve_trace):
        clock = ReplayClock()
        source = ReplaySource(serve_trace, pps=10.0, clock=clock)
        source.begin()  # anchor the schedule before time passes
        clock.advance(1.0)
        assert source.due_count() == 10
        batch = source.next_batch()
        assert len(batch) == 10
        assert source.cursor == 10
        clock.advance(0.5)
        assert source.due_count() == 5

    def test_unpaced_delivers_everything(self, serve_trace):
        source = ReplaySource(
            serve_trace, pps=0.0, clock=ReplayClock(), batch_max=10_000
        )
        batch = source.next_batch()
        assert len(batch) == len(serve_trace)
        assert source.exhausted

    def test_batch_max_caps_delivery(self, serve_trace):
        clock = ReplayClock()
        source = ReplaySource(
            serve_trace, pps=100.0, clock=clock, batch_max=7
        )
        source.begin()
        clock.advance(1.0)  # 100 due, capped to 7 per batch
        assert len(source.next_batch()) == 7
        assert source.due_count() == 93

    def test_next_due_is_the_next_packet_time(self, serve_trace):
        clock = ReplayClock(start=5.0)
        source = ReplaySource(serve_trace, pps=10.0, clock=clock)
        assert source.next_due() == pytest.approx(5.1)
        clock.advance(1.0)
        source.next_batch()  # consume the 10 due packets
        assert source.next_due() == pytest.approx(6.1)

    def test_resume_backdates_the_schedule(self, serve_trace):
        clock = ReplayClock(start=100.0)
        source = ReplaySource(
            serve_trace, pps=10.0, clock=clock, start_row=50
        )
        # the consumed prefix is treated as already delivered on time:
        # nothing extra is due, and packet 51 is due 0.1s from now
        assert source.due_count() == 0
        assert source.next_due() == pytest.approx(100.1)
        clock.advance(0.2)
        assert source.due_count() == 2
        assert len(source.next_batch()) == 2
        assert source.cursor == 52

    def test_exhaustion(self, serve_trace):
        source = ReplaySource(
            serve_trace, pps=0.0, clock=ReplayClock(), batch_max=10_000
        )
        assert not source.exhausted
        assert source.remaining == len(serve_trace)
        source.next_batch()
        assert source.exhausted
        assert source.next_due() is None
        assert source.next_batch() is None

    def test_bad_start_row_rejected(self, serve_trace):
        with pytest.raises(ValueError, match="start_row"):
            ReplaySource(
                serve_trace,
                pps=1.0,
                clock=ReplayClock(),
                start_row=len(serve_trace) + 1,
            )

    def test_ingest_fault_fires_before_the_cursor_moves(self, serve_trace):
        clock = ReplayClock()
        source = ReplaySource(serve_trace, pps=10.0, clock=clock)
        source.begin()
        clock.advance(1.0)
        plan = FaultPlan(rules=(FaultRule("ingest", fail_first=1),))
        with active(plan):
            with pytest.raises(Exception, match="injected"):
                source.next_batch()
            # zero loss: the failed delivery left the packets in place
            assert source.cursor == 0
            assert len(source.next_batch()) == 10
        assert source.cursor == 10

    def test_ingest_counter_tracks_deliveries(self, serve_trace):
        clock = ReplayClock()
        source = ReplaySource(serve_trace, pps=10.0, clock=clock)
        source.begin()
        clock.advance(2.0)
        source.next_batch()
        counter = METRICS.counter(metric_names.SERVE_PACKETS_INGESTED)
        assert counter.value == 20


class TestChunkAssembler:
    def push_all(self, assembler, table, batch=97):
        chunks = []
        for start in range(0, len(table), batch):
            piece = table.select(
                np.arange(start, min(start + batch, len(table)))
            )
            chunks.extend(assembler.push(piece))
        chunks.extend(assembler.flush())
        return chunks

    def test_matches_offline_chunked_partition(self, serve_trace):
        trace = serve_trace.sort_by_time()
        assembler = ChunkAssembler(5.0)
        ours = self.push_all(assembler, trace)
        reference = list(chunked(trace, 5.0))
        assert len(ours) == len(reference)
        for chunk, ref in zip(ours, reference):
            assert np.array_equal(chunk.table.ts, ref.ts)

    def test_row_ranges_are_contiguous_and_complete(self, serve_trace):
        trace = serve_trace.sort_by_time()
        chunks = self.push_all(ChunkAssembler(5.0), trace, batch=53)
        cursor = 0
        for chunk in chunks:
            assert chunk.row_start == cursor
            cursor += chunk.rows
        assert cursor == len(trace)

    def test_one_batch_spanning_many_windows_splits(self, serve_trace):
        trace = serve_trace.sort_by_time()
        assembler = ChunkAssembler(5.0)
        emitted = assembler.push(trace)  # the whole trace in one push
        emitted.extend(assembler.flush())
        assert len(emitted) == len(list(chunked(trace, 5.0)))

    def test_flush_emits_the_partial_tail(self, serve_trace):
        trace = serve_trace.sort_by_time()
        assembler = ChunkAssembler(5.0)
        assembler.push(trace.select(np.arange(10)))
        assert assembler.pending_rows == 10
        tail = assembler.flush()
        assert len(tail) == 1 and tail[0].rows == 10
        assert assembler.pending_rows == 0
        assert assembler.flush() == []

    def test_resume_parameters_restore_bookkeeping(self, serve_trace):
        trace = serve_trace.sort_by_time()
        whole = self.push_all(ChunkAssembler(5.0), trace)
        # split the replay at a chunk boundary, as a resume would
        cut_chunk = 2
        cut_row = whole[cut_chunk].row_start
        resumed = ChunkAssembler(
            5.0, origin=float(trace.ts[0]), row_counter=cut_row
        )
        rest = self.push_all(
            resumed, trace.select(np.arange(cut_row, len(trace)))
        )
        assert [c.window for c in rest] == [
            c.window for c in whole[cut_chunk:]
        ]
        assert [c.row_start for c in rest] == [
            c.row_start for c in whole[cut_chunk:]
        ]

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError, match="chunk_seconds"):
            ChunkAssembler(0.0)
