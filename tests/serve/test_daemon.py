"""End-to-end behaviour of the serve daemon.

Every test runs the daemon on a virtual clock, which makes the whole
run -- pacing, backoff schedules, stall windows -- a deterministic
function of (trace, template, config, fault plan).  The load-bearing
assertions are byte-equality ones: whatever the daemon survives
(faults, reloads, crashes, drops), its outputs must equal an offline
``run_stream`` over the rows it actually served.
"""

import json

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultRule, active
from repro.obs import METRICS
from repro.obs import metrics as metric_names
from repro.serve import ReplayClock, ServeConfig, ServeDaemon

CHUNK_SECONDS = 5.0


def make_daemon(trace, tmp_path=None, **overrides) -> ServeDaemon:
    """An unpaced virtual-time daemon over the shared test trace."""
    # collect X too: the features carry the Kitsune stream state, so
    # byte-equality on X is the strong invariant (y is stateless)
    defaults = dict(
        chunk_seconds=CHUNK_SECONDS,
        pps=0.0,
        retries=2,
        backoff_base=0.05,
        seed=0,
        outputs=["X", "y"],
    )
    defaults.update(overrides)
    if tmp_path is not None:
        defaults.setdefault("quarantine_path",
                            str(tmp_path / "quarantine.jsonl"))
        defaults.setdefault("status_path", str(tmp_path / "status.json"))
    return ServeDaemon(
        trace,
        config=ServeConfig(**defaults),
        clock=ReplayClock(),
        dataset_id="serve-test",
    )


def baseline_outputs(trace) -> dict:
    """One clean daemon run's collected outputs (itself verified)."""
    daemon = make_daemon(trace)
    report = daemon.run()
    assert report.ok
    assert all(daemon.verify_against_offline().values())
    return daemon.collected()


class TestCleanRun:
    def test_scores_everything_byte_equal_to_offline(self, serve_trace):
        daemon = make_daemon(serve_trace)
        report = daemon.run()
        assert report.ok and report.reason == ""
        assert report.packets_ingested == report.packets_total
        assert report.packets_lost == 0
        assert report.chunks_scored > 1
        assert all(daemon.verify_against_offline().values())

    def test_paced_run_matches_unpaced(self, serve_trace):
        paced = make_daemon(serve_trace, pps=500.0, batch_max=64)
        assert paced.run().ok
        reference = baseline_outputs(serve_trace)
        mine = paced.collected()
        for name, value in reference.items():
            assert np.array_equal(np.asarray(mine[name]),
                                  np.asarray(value)), name

    def test_status_file_lifecycle(self, serve_trace, tmp_path):
        daemon = make_daemon(serve_trace, tmp_path)
        daemon.run()
        status = json.loads((tmp_path / "status.json").read_text())
        assert status["state"] == "stopped"
        assert status["packets_ingested"] == len(serve_trace)
        assert status["chunks_scored"] == daemon._scored

    def test_stop_request_drains_gracefully(self, serve_trace):
        class StopEarly(ServeDaemon):
            def _finish_chunk(self, chunk, out, anomalies):
                super()._finish_chunk(chunk, out, anomalies)
                if self._scored == 2:
                    self.request_stop()

        daemon = StopEarly(
            serve_trace,
            config=ServeConfig(chunk_seconds=CHUNK_SECONDS,
                               outputs=["X", "y"]),
            clock=ReplayClock(),
        )
        report = daemon.run()
        assert report.ok and report.reason == "stop requested"
        assert report.chunks_scored == 2


class TestChaos:
    def test_faults_retried_to_zero_loss(self, serve_trace):
        plan = FaultPlan.parse("score_chunk:0.3,ingest:0.1", seed=7)
        daemon = make_daemon(serve_trace, retries=3)
        with active(plan) as injector:
            report = daemon.run()
            fired = len(injector.fired)
        assert fired > 0, "the plan injected nothing -- test is vacuous"
        assert report.ok
        assert report.packets_lost == 0
        assert all(daemon.verify_against_offline().values())
        retried = (
            METRICS.counter(metric_names.SERVE_CHUNK_RETRIES).value
            + METRICS.counter(metric_names.SERVE_INGEST_RETRIES).value
        )
        assert retried > 0

    def test_exhausted_retries_quarantine_visibly(self, serve_trace, tmp_path):
        # fail-first 8 scoring attempts at 2 attempts per chunk: the
        # first 4 chunks quarantine, everything after scores cleanly
        plan = FaultPlan(rules=(FaultRule("score_chunk", fail_first=8),))
        daemon = make_daemon(serve_trace, tmp_path, retries=1)
        with active(plan):
            report = daemon.run()
        assert report.ok  # quarantine is degradation, not death
        assert report.chunks_quarantined == 4
        assert report.packets_lost > 0
        assert report.chunks_scored + report.chunks_quarantined > 4
        # the loss is journaled row range by row range
        records = [
            json.loads(line)
            for line in (tmp_path / "quarantine.jsonl").read_text().splitlines()
            if line.strip()
        ]
        assert len(records) == 4
        assert all(r["kind"] == "quarantine" for r in records)
        assert all(r["attempts"] == 2 for r in records)
        assert sum(r["rows"] for r in records) == report.packets_lost
        # and the survivors are byte-equal to an offline run over the
        # surviving rows: quarantined state updates were rolled back
        assert all(daemon.verify_against_offline().values())
        assert len(daemon.surviving_table()) == (
            len(serve_trace) - report.packets_lost
        )

    def test_drop_oldest_losses_are_visible(self, serve_trace):
        # unpaced replay assembles many chunks per tick but scores only
        # one, so a tiny drop-oldest queue must evict -- visibly
        daemon = make_daemon(
            serve_trace,
            queue_capacity=2,
            policy="drop-oldest",
            batch_max=10_000,
        )
        report = daemon.run()
        assert report.ok
        assert report.chunks_dropped > 0
        assert report.packets_lost > 0
        assert all(daemon.verify_against_offline().values())

    def test_block_policy_never_loses(self, serve_trace):
        daemon = make_daemon(
            serve_trace,
            queue_capacity=2,
            policy="block",
            batch_max=10_000,
        )
        report = daemon.run()
        assert report.ok
        assert report.chunks_dropped == 0
        assert report.packets_lost == 0
        assert METRICS.counter(metric_names.SERVE_QUEUE_BLOCKED).value > 0
        assert all(daemon.verify_against_offline().values())


class TestWatchdog:
    def test_restart_budget_exhaustion_is_fatal(self, serve_trace):
        plan = FaultPlan(rules=(FaultRule("ingest", rate=1.0),))
        daemon = make_daemon(
            serve_trace,
            stall_seconds=5.0,
            max_watchdog_restarts=2,
            backoff_base=0.5,
        )
        with active(plan):
            report = daemon.run()
        assert not report.ok
        assert "watchdog restart budget exhausted" in report.reason
        assert report.watchdog_restarts == 2
        restarts = METRICS.counter(metric_names.SERVE_WATCHDOG_RESTARTS)
        assert restarts.value == 2

    def test_recovers_when_the_fault_clears(self, serve_trace):
        # the first 3 deliveries fail; backoff + watchdog keep the
        # daemon alive until ingest heals, then everything is served
        plan = FaultPlan(rules=(FaultRule("ingest", fail_first=3),))
        daemon = make_daemon(serve_trace, stall_seconds=60.0)
        with active(plan):
            report = daemon.run()
        assert report.ok
        assert report.packets_lost == 0
        assert all(daemon.verify_against_offline().values())
        assert METRICS.counter(
            metric_names.SERVE_INGEST_RETRIES
        ).value == 3


class TestReload:
    def test_reload_at_every_chunk_boundary_changes_nothing(
        self, serve_trace
    ):
        """The SIGHUP property: a same-template swap at ANY chunk index
        drops no packets and changes no scores."""
        reference = baseline_outputs(serve_trace)
        n_chunks = make_daemon(serve_trace).run().chunks_scored

        class ReloadAt(ServeDaemon):
            reload_after = 0

            def _finish_chunk(self, chunk, out, anomalies):
                super()._finish_chunk(chunk, out, anomalies)
                if self._scored == self.reload_after:
                    self.request_reload()

        # a reload requested after chunk k swaps before chunk k+1, so
        # the interior boundaries are 1..n-1; a request after the final
        # chunk has no next boundary and must drain harmlessly instead
        for index in range(1, n_chunks + 1):
            daemon = ReloadAt(
                serve_trace,
                config=ServeConfig(chunk_seconds=CHUNK_SECONDS,
                                   outputs=["X", "y"]),
                clock=ReplayClock(),
            )
            daemon.reload_after = index
            report = daemon.run()
            assert report.ok, f"reload at chunk {index} broke the run"
            assert report.reloads == (1 if index < n_chunks else 0)
            assert report.packets_lost == 0
            mine = daemon.collected()
            for name, value in reference.items():
                assert np.array_equal(
                    np.asarray(mine[name]), np.asarray(value)
                ), f"output {name} changed after reload at chunk {index}"

    def test_broken_new_template_keeps_the_old_session(
        self, serve_trace, tmp_path
    ):
        import json as json_module

        template_path = tmp_path / "template.json"
        good = [
            {"func": "KitsuneFeatures", "input": None, "output": "X",
             "lambdas": [1.0, 0.1]},
        ]
        template_path.write_text(json_module.dumps(good))

        class BreakThenReload(ServeDaemon):
            def _finish_chunk(self, chunk, out, anomalies):
                super()._finish_chunk(chunk, out, anomalies)
                if self._scored == 2:
                    template_path.write_text("{not json")
                    self.request_reload()

        daemon = BreakThenReload(
            serve_trace,
            config=ServeConfig(chunk_seconds=CHUNK_SECONDS),
            template_path=template_path,
            clock=ReplayClock(),
        )
        report = daemon.run()
        assert report.ok
        assert report.reloads == 0  # the swap was refused...
        assert report.packets_lost == 0  # ...and the old session served on
        assert "reload:" in daemon._last_error
        assert all(daemon.verify_against_offline().values())


class TestCrashRecovery:
    def test_resume_continues_byte_equal(self, serve_trace, tmp_path):
        reference = baseline_outputs(serve_trace)
        checkpoint = str(tmp_path / "checkpoint.jsonl")

        phase1 = make_daemon(
            serve_trace,
            checkpoint_path=checkpoint,
            checkpoint_every=1,
            max_chunks=3,
        )
        report1 = phase1.run()
        assert report1.ok and report1.reason == "max_chunks reached"
        assert report1.chunks_scored == 3

        phase2 = make_daemon(
            serve_trace,
            checkpoint_path=checkpoint,
            checkpoint_every=1,
            resume=True,
        )
        report2 = phase2.run()
        assert report2.ok and report2.reason == ""
        # counters are lifetime-of-service: the resumed daemon carries
        # the predecessor's tally forward
        assert report2.chunks_scored > report1.chunks_scored
        assert report2.packets_lost == 0

        first, second = phase1.collected(), phase2.collected()
        for name, value in reference.items():
            rejoined = np.concatenate(
                [np.asarray(first[name]), np.asarray(second[name])]
            )
            assert np.array_equal(rejoined, np.asarray(value)), name

    def test_resume_without_checkpoint_starts_fresh(
        self, serve_trace, tmp_path
    ):
        daemon = make_daemon(
            serve_trace,
            checkpoint_path=str(tmp_path / "missing.jsonl"),
            resume=True,
        )
        report = daemon.run()
        assert report.ok
        assert report.packets_ingested == len(serve_trace)

    def test_checkpoint_write_failure_degrades_not_dies(
        self, serve_trace, tmp_path
    ):
        plan = FaultPlan(rules=(FaultRule("checkpoint_write",
                                          fail_first=1),))
        daemon = make_daemon(
            serve_trace,
            checkpoint_path=str(tmp_path / "checkpoint.jsonl"),
            checkpoint_every=2,
        )
        with active(plan):
            report = daemon.run()
        assert report.ok
        assert report.packets_lost == 0
        errors = METRICS.counter(metric_names.SERVE_CHECKPOINT_ERRORS)
        assert errors.value == 1
        assert report.checkpoints_written > 0  # later writes succeeded
        assert all(daemon.verify_against_offline().values())

    def test_checkpoint_refuses_template_drift(self, serve_trace, tmp_path):
        checkpoint = str(tmp_path / "checkpoint.jsonl")
        phase1 = make_daemon(
            serve_trace,
            checkpoint_path=checkpoint,
            checkpoint_every=1,
            max_chunks=2,
        )
        assert phase1.run().ok

        drifted = ServeDaemon(
            serve_trace,
            config=ServeConfig(
                chunk_seconds=CHUNK_SECONDS,
                checkpoint_path=checkpoint,
                resume=True,
            ),
            template=[{"func": "Labels", "input": None, "output": "y"}],
            clock=ReplayClock(),
        )
        report = drifted.run()
        assert not report.ok
        assert "startup failed" in report.reason
        assert "snapshot" in report.reason
