"""Tests for merged-dataset training and the greedy synthesizer."""

import numpy as np
import pytest

from repro.algorithms import ALGORITHMS, build_algorithm
from repro.algorithms.synthesis import (
    FEATURE_BLOCKS,
    GreedySynthesizer,
    _feature_template,
    merged_train_test,
    synthesized_algorithms,
)
from repro.core import Pipeline


class TestFeatureTemplates:
    def test_single_block_template_validates(self):
        for block in FEATURE_BLOCKS:
            Pipeline.from_template(list(_feature_template([block])))

    def test_multi_block_template_validates(self):
        template = _feature_template(["conn_log", "volume_stats",
                                      "port_entropy"])
        pipeline = Pipeline.from_template(list(template))
        assert pipeline.output_name == "y"

    def test_empty_blocks_rejected(self):
        with pytest.raises(ValueError):
            _feature_template([])


class TestMergedTraining:
    def test_split_sizes_and_disjointness(self):
        spec = build_algorithm("A14")
        X_train, y_train, X_test, y_test = merged_train_test(
            spec, ["F0", "F1"], fraction=0.1, seed=0
        )
        assert len(X_train) == len(y_train)
        assert len(X_test) == len(y_test)
        # 10% of each dataset on each side
        assert len(X_train) == len(X_test)

    def test_fraction_bounds(self):
        spec = build_algorithm("A14")
        with pytest.raises(ValueError):
            merged_train_test(spec, ["F0"], fraction=0.0)
        with pytest.raises(ValueError):
            merged_train_test(spec, ["F0"], fraction=0.9)

    def test_contains_units_from_every_dataset(self):
        spec = build_algorithm("A14")
        _, y_a, _, _ = merged_train_test(spec, ["F0"], fraction=0.1, seed=0)
        _, y_ab, _, _ = merged_train_test(
            spec, ["F0", "F1"], fraction=0.1, seed=0
        )
        assert len(y_ab) > len(y_a)

    def test_merged_training_improves_cross_generalisation(self):
        # Observation 5: merging datasets improves precision on a mixed
        # test set, compared with training on a single dataset.
        spec = build_algorithm("A14")
        X_train, y_train, X_test, y_test = merged_train_test(
            spec, ["F0", "F1", "F4", "F6"], fraction=0.15, seed=1
        )
        merged_model = spec.build_model()
        merged_model.fit(X_train, y_train)
        from repro.ml import precision_score

        merged_precision = precision_score(
            y_test, merged_model.predict(X_test)
        )
        # single-dataset training on F0 only
        from repro.core import ExecutionEngine
        from repro.datasets import load_dataset

        engine = ExecutionEngine(track_memory=False)
        X_f0, y_f0 = spec.featurize(load_dataset("F0"), engine, "F0")
        single_model = spec.build_model()
        single_model.fit(X_f0, y_f0)
        single_precision = precision_score(
            y_test, single_model.predict(X_test)
        )
        assert merged_precision >= single_precision - 0.02


class TestSynthesizer:
    @pytest.fixture(scope="class")
    def synthesizer(self):
        synth = GreedySynthesizer(["F0", "F4"], fraction=0.15, seed=0)
        # restrict to two cheap model families for test speed
        import repro.algorithms.synthesis as synthesis_module

        original = synthesis_module.MODEL_CANDIDATES
        synthesis_module.MODEL_CANDIDATES = [
            ("DecisionTree", {}, False),
            ("NaiveBayes", {}, True),
        ]
        try:
            synth.search(max_blocks=2)
        finally:
            synthesis_module.MODEL_CANDIDATES = original
        return synth

    def test_search_produces_ranked_results(self, synthesizer):
        results = sorted(
            synthesizer.results, key=lambda r: r.f1, reverse=True
        )
        assert len(results) >= 5
        assert results[0].f1 >= results[-1].f1
        assert all(0.0 <= r.precision <= 1.0 for r in results)

    def test_top_specs_are_distinct_and_valid(self, synthesizer):
        specs = synthesizer.top_specs(2)
        assert [s.algorithm_id for s in specs] == ["AM01", "AM02"]
        for spec in specs:
            spec.feature_pipeline()
            spec.model_pipeline()
            assert spec.granularity.name == "CONNECTION"

    def test_describe_is_readable(self, synthesizer):
        text = synthesizer.results[0].describe()
        assert "precision=" in text

    def test_register_into_catalog(self, synthesizer):
        specs = synthesizer.top_specs(1)
        ALGORITHMS[specs[0].algorithm_id] = specs[0]
        try:
            assert build_algorithm("AM01") is specs[0]
        finally:
            ALGORITHMS.pop("AM01", None)
