"""Tests for the algorithm catalog (A00-A15)."""

import numpy as np
import pytest

from repro.algorithms import ALGORITHMS, build_algorithm
from repro.algorithms.catalog import algorithm_ids
from repro.core import ExecutionEngine
from repro.datasets import load_dataset
from repro.flows import Granularity


CATALOG_IDS = [f"A{i:02d}" for i in range(16)]


class TestCatalogStructure:
    def test_sixteen_algorithms(self):
        for algorithm_id in CATALOG_IDS:
            assert algorithm_id in ALGORITHMS

    def test_granularity_split_matches_paper(self):
        packet = set(algorithm_ids(Granularity.PACKET))
        assert packet == {"A00", "A01", "A02", "A03", "A04", "A05", "A06"}
        flowlike = (
            set(algorithm_ids(Granularity.CONNECTION))
            | set(algorithm_ids(Granularity.UNI_FLOW))
        )
        assert flowlike >= {"A07", "A08", "A09", "A10", "A11", "A12", "A13",
                            "A14", "A15"}

    def test_all_templates_validate(self):
        for algorithm_id in CATALOG_IDS:
            spec = build_algorithm(algorithm_id)
            spec.feature_pipeline()  # raises TemplateError if malformed
            spec.model_pipeline()

    def test_every_spec_cites_its_paper(self):
        for algorithm_id in CATALOG_IDS:
            assert build_algorithm(algorithm_id).paper

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            build_algorithm("A99")

    def test_full_template_ends_with_evaluate(self):
        spec = build_algorithm("A14")
        template = spec.full_template()
        assert template[-1]["func"] == "evaluate"
        from repro.core import Pipeline

        Pipeline.from_template(template)  # must validate as a whole


class TestModelConstruction:
    @pytest.mark.parametrize("algorithm_id", CATALOG_IDS)
    def test_build_model_returns_fittable(self, algorithm_id):
        model = build_algorithm(algorithm_id).build_model()
        assert hasattr(model, "fit")
        assert hasattr(model, "predict")

    def test_build_model_independent_instances(self):
        spec = build_algorithm("A14")
        assert spec.build_model() is not spec.build_model()


class TestFeaturization:
    @pytest.fixture(scope="class")
    def engine(self):
        return ExecutionEngine(track_memory=False)

    @pytest.mark.parametrize(
        "algorithm_id", ["A00", "A05", "A06"]
    )
    def test_packet_algorithms_on_packet_dataset(self, algorithm_id, engine):
        spec = build_algorithm(algorithm_id)
        X, y = spec.featurize(load_dataset("P0"), engine, source_token="P0")
        assert len(X) == len(y) <= 3000
        assert np.isfinite(X).all()
        assert set(np.unique(y)) <= {0, 1}

    @pytest.mark.parametrize(
        "algorithm_id",
        ["A07", "A10", "A11", "A12", "A13", "A14", "A15"],
    )
    def test_flow_algorithms_on_connection_dataset(self, algorithm_id, engine):
        spec = build_algorithm(algorithm_id)
        X, y = spec.featurize(load_dataset("F0"), engine, source_token="F0")
        assert len(X) == len(y) > 100
        assert np.isfinite(X).all()

    def test_nprint_variants_differ_in_width(self, engine):
        table = load_dataset("P0")
        widths = {}
        for algorithm_id in ("A01", "A02", "A03", "A04"):
            X, _ = build_algorithm(algorithm_id).featurize(
                table, engine, source_token="P0"
            )
            widths[algorithm_id] = X.shape[1]
        assert widths["A01"] > widths["A02"]
        assert widths["A03"] > widths["A02"]
        assert len(set(widths.values())) == 4

    def test_featurization_deterministic(self, engine):
        spec = build_algorithm("A10")
        fresh = ExecutionEngine(use_cache=False, track_memory=False)
        X1, y1 = spec.featurize(load_dataset("F0"), fresh, source_token="F0")
        X2, y2 = spec.featurize(load_dataset("F0"), fresh, source_token="F0")
        assert np.array_equal(X1, X2)
        assert np.array_equal(y1, y2)

    def test_same_features_shared_between_a07_a08_a09(self, engine):
        # identical feature templates -> one cached featurization
        fresh = ExecutionEngine(track_memory=False)
        table = load_dataset("F4")
        build_algorithm("A07").featurize(table, fresh, source_token="F4")
        build_algorithm("A08").featurize(table, fresh, source_token="F4")
        cached = [p.cached for p in fresh.last_report.profiles]
        assert all(cached)
