"""Tests for resource telemetry (repro.obs.resources).

The probe itself (CPU/RSS/GC/allocation readings), its tracemalloc
ownership discipline, and the engine integration: every step, run and
wave span must carry the resource block the profiler and
``tools/check_trace.py`` rely on.
"""

import tracemalloc

import pytest

from repro.core import ExecutionEngine, Pipeline
from repro.obs import ResourceProbe, RingBufferSink, get_tracer, rss_peak_bytes
from repro.obs.spans import Span
from repro.traffic import AttackSpec, NetworkScenario


@pytest.fixture(scope="module")
def small_trace():
    scenario = NetworkScenario(
        name="resource-test",
        device_counts={"workstation": 2, "thermostat": 1},
        duration=30.0,
        seed=99,
        attacks=(AttackSpec("port_scan", 0.4, 0.7, intensity=0.2),),
    )
    return scenario.generate()

TEMPLATE = [
    {"func": "SortByTime", "input": None, "output": "sorted"},
    {"func": "ProtocolOneHot", "input": ["sorted"], "output": "X"},
    {"func": "Labels", "input": ["sorted"], "output": "y"},
]


def capture(fn):
    """Run ``fn`` with an unbounded sink on the global tracer."""
    sink = RingBufferSink(capacity=None)
    tracer = get_tracer()
    tracer.add_sink(sink)
    try:
        fn()
    finally:
        tracer.remove_sink(sink)
    return sink.events()


class TestResourceProbe:
    def test_stop_reports_the_base_resources(self):
        probe = ResourceProbe().start()
        sum(i * i for i in range(50_000))  # burn some CPU
        resources = probe.stop()
        assert resources["cpu_seconds"] > 0
        assert resources["rss_peak_bytes"] > 0
        assert resources["gc_collections"] >= 0
        assert "alloc_bytes" not in resources

    def test_track_alloc_reports_allocation_deltas(self):
        probe = ResourceProbe(track_alloc=True).start()
        blob = [bytes(1024) for _ in range(512)]
        resources = probe.stop()
        assert resources["alloc_peak_bytes"] >= 512 * 1024
        assert isinstance(resources["alloc_bytes"], int)
        assert blob  # keep the allocation alive through stop()

    def test_probe_does_not_stop_foreign_tracemalloc(self):
        tracemalloc.start()
        try:
            probe = ResourceProbe(track_alloc=True).start()
            probe.stop()
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()

    def test_owned_tracemalloc_is_stopped(self):
        assert not tracemalloc.is_tracing()
        probe = ResourceProbe(track_alloc=True).start()
        assert tracemalloc.is_tracing()
        probe.stop()
        assert not tracemalloc.is_tracing()

    def test_process_cpu_covers_thread_work(self):
        probe = ResourceProbe(cpu="process").start()
        sum(i * i for i in range(50_000))
        assert probe.stop()["cpu_seconds"] > 0

    def test_finish_attaches_attrs_to_a_span(self):
        span = Span(name="s", span_id=1, parent_id=None, trace_id=1,
                    started_unix=0.0)
        probe = ResourceProbe().start()
        resources = probe.finish(span)
        assert span.attributes["cpu_seconds"] == resources["cpu_seconds"]
        assert (span.attributes["rss_peak_bytes"]
                == resources["rss_peak_bytes"])
        assert (span.attributes["gc_collections"]
                == resources["gc_collections"])

    def test_rss_peak_is_positive_bytes(self):
        # larger than any plausible page-count reading, so the KiB
        # scaling on Linux is actually applied
        assert rss_peak_bytes() > 1024 * 1024


class TestEngineResourceSpans:
    def run_spans(self, small_trace, **engine_kwargs):
        events = capture(
            lambda: ExecutionEngine(use_cache=False, **engine_kwargs).run(
                Pipeline.from_template(TEMPLATE), small_trace,
                outputs=["X", "y"],
            )
        )
        return [e for e in events if e.get("kind") == "span"]

    def test_step_spans_carry_the_resource_block(self, small_trace):
        spans = self.run_spans(small_trace, track_memory=False)
        steps = [s for s in spans if s["name"].startswith("step:")]
        assert len(steps) == len(TEMPLATE)
        for span in steps:
            assert span["attrs"]["cpu_seconds"] >= 0
            assert span["attrs"]["rss_peak_bytes"] > 0
            assert span["attrs"]["gc_collections"] >= 0
            assert "alloc_peak_bytes" not in span["attrs"]

    def test_track_memory_adds_alloc_attrs(self, small_trace):
        spans = self.run_spans(small_trace, track_memory=True)
        steps = [s for s in spans if s["name"].startswith("step:")]
        for span in steps:
            assert isinstance(span["attrs"]["alloc_bytes"], int)
            assert span["attrs"]["alloc_peak_bytes"] >= 0

    def test_run_span_carries_process_resources(self, small_trace):
        spans = self.run_spans(small_trace, track_memory=False)
        run = next(s for s in spans if s["name"] == "run")
        assert run["attrs"]["cpu_seconds"] >= 0
        assert run["attrs"]["rss_peak_bytes"] > 0

    def test_wave_spans_carry_resources_in_parallel_mode(self, small_trace):
        spans = self.run_spans(
            small_trace, track_memory=False, parallel=True, max_workers=2
        )
        waves = [s for s in spans if s["name"] == "wave"]
        assert waves
        for span in waves:
            assert span["attrs"]["cpu_seconds"] >= 0
            assert span["attrs"]["rss_peak_bytes"] > 0

    def test_cached_steps_still_carry_resources(self, small_trace):
        def both_runs():
            engine = ExecutionEngine(use_cache=True, track_memory=False)
            pipeline = Pipeline.from_template(TEMPLATE)
            engine.run(pipeline, small_trace, outputs=["X", "y"],
                       source_token="t")
            engine.run(pipeline, small_trace, outputs=["X", "y"],
                       source_token="t")

        events = capture(both_runs)
        cached = [
            e for e in events
            if e.get("kind") == "span" and e["name"].startswith("step:")
            and e["attrs"].get("cached")
        ]
        assert cached
        for span in cached:
            assert span["attrs"]["cpu_seconds"] >= 0
            assert span["attrs"]["rss_peak_bytes"] > 0
