"""Tests for sinks (ring/JSONL round-trip) and the human renderers."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import (
    JsonlFileSink,
    RingBufferSink,
    Tracer,
    TreeRenderer,
    build_tree,
    format_bytes,
    read_trace,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
CHECKER = REPO_ROOT / "tools" / "check_trace.py"


class TestRingBuffer:
    def test_bounded_capacity_drops_oldest(self):
        sink = RingBufferSink(capacity=3)
        for index in range(5):
            sink.emit({"kind": "event", "name": str(index)})
        assert [e["name"] for e in sink.events()] == ["2", "3", "4"]

    def test_unbounded(self):
        sink = RingBufferSink(capacity=None)
        for index in range(5000):
            sink.emit({"kind": "event", "name": str(index)})
        assert len(sink) == 5000

    def test_clear(self):
        sink = RingBufferSink()
        sink.emit({"kind": "event", "name": "x"})
        sink.clear()
        assert sink.events() == []


class TestJsonlRoundTrip:
    def test_write_parse_reconstruct_tree(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sinks=[JsonlFileSink(path)])
        with tracer.span("run", source="t"):
            with tracer.span("wave", wave=0):
                with tracer.span("step:Groupby", step=0):
                    pass
                with tracer.span("step:Labels", step=1):
                    pass
        events = read_trace(path)
        assert len(events) == 4
        roots, children = build_tree(events)
        assert [r["name"] for r in roots] == ["run"]
        wave = children[roots[0]["span_id"]][0]
        steps = [e["name"] for e in children[wave["span_id"]]]
        assert steps == ["step:Groupby", "step:Labels"]

    def test_non_json_values_survive_as_repr(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sinks=[JsonlFileSink(path)])
        with tracer.span("s", weird={1, 2}):
            pass
        (event,) = read_trace(path)
        assert "1" in event["attrs"]["weird"]

    def test_lazy_open_writes_nothing_until_emitted(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        JsonlFileSink(path)
        assert not path.exists()

    def test_read_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "span"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_trace(path)

    def test_checker_accepts_real_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sinks=[JsonlFileSink(path)])
        with tracer.span("run"):
            tracer.event("cache.hit", key="k")
        proc = subprocess.run(
            [sys.executable, str(CHECKER), str(path)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout

    def test_checker_rejects_schema_violations(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "span", "name": 7}) + "\n")
        proc = subprocess.run(
            [sys.executable, str(CHECKER), str(path)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "missing field" in proc.stdout or "type" in proc.stdout

    def test_checker_accepts_stream_spans(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        tracer = Tracer(sinks=[JsonlFileSink(path)])
        with tracer.span("run_stream", source="t", chunk_seconds=5.0) as run:
            with tracer.span("stream_chunk", parent=run, chunk=0,
                             rows=10, state_bytes=128):
                pass
            run.set("chunks", 1)
        proc = subprocess.run(
            [sys.executable, str(CHECKER), str(path)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout

    def test_checker_accepts_refused_stream_run(self, tmp_path):
        path = tmp_path / "refused.jsonl"
        tracer = Tracer(sinks=[JsonlFileSink(path)])
        with tracer.span("run_stream", source="t") as run:
            run.set("stream_refused", "Downsample:verdict:batch-only")
        proc = subprocess.run(
            [sys.executable, str(CHECKER), str(path)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout

    def test_checker_rejects_incomplete_stream_spans(self, tmp_path):
        path = tmp_path / "bad_stream.jsonl"
        tracer = Tracer(sinks=[JsonlFileSink(path)])
        # stream_chunk without state_bytes; run_stream with neither a
        # refusal reason nor a chunk count
        with tracer.span("run_stream", source="t") as run:
            with tracer.span("stream_chunk", parent=run, chunk=0, rows=10):
                pass
        proc = subprocess.run(
            [sys.executable, str(CHECKER), str(path)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "state_bytes" in proc.stdout
        assert "run_stream" in proc.stdout

    def test_checker_rejects_empty_refusal_reason(self, tmp_path):
        path = tmp_path / "empty_refusal.jsonl"
        tracer = Tracer(sinks=[JsonlFileSink(path)])
        with tracer.span("run_stream", source="t") as run:
            run.set("stream_refused", "")
        proc = subprocess.run(
            [sys.executable, str(CHECKER), str(path)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "stream_refused" in proc.stdout

    def test_checker_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        proc = subprocess.run(
            [sys.executable, str(CHECKER), str(path)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "empty" in proc.stdout


class TestFormatBytes:
    @pytest.mark.parametrize("count,expected", [
        (0, "0 B"),
        (512, "512 B"),
        (1536, "1.5 KiB"),
        (8 * 1024 * 1024, "8.0 MiB"),
        (3 * 1024 ** 3, "3.0 GiB"),
        (2 * 1024 ** 4, "2.0 TiB"),
    ])
    def test_units(self, count, expected):
        assert format_bytes(count) == expected


class TestTreeRenderer:
    def _events(self):
        sink = RingBufferSink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("run", source="t"):
            with tracer.span("step:Groupby", cached=False,
                             peak_memory_bytes=2048):
                tracer.event("cache.miss", key="abc")
            with tracer.span("step:Labels", cached=True):
                pass
        return sink.events()

    def test_tree_shape_and_markers(self):
        text = TreeRenderer().render(self._events())
        lines = text.splitlines()
        assert lines[0].startswith("run")
        assert "├─ step:Groupby" in text
        assert "└─ step:Labels" in text
        assert "[cached]" in text
        assert "mem=2.0 KiB" in text

    def test_point_events_shown_on_request(self):
        events = self._events()
        assert "cache.miss" not in TreeRenderer().render(events)
        shown = TreeRenderer(show_events=True).render(events)
        assert "cache.miss" in shown
        assert "key=abc" in shown

    def test_orphan_spans_become_roots(self):
        events = [{
            "kind": "span", "name": "orphan", "span_id": 9,
            "parent_id": 4, "trace_id": 1, "ts": 0.0,
            "duration_seconds": 0.5, "status": "ok", "attrs": {},
        }]
        assert "orphan" in TreeRenderer().render(events)

    def test_empty_trace(self):
        assert TreeRenderer().render([]) == "(no spans)"

    def test_error_status_flagged(self):
        sink = RingBufferSink()
        tracer = Tracer(sinks=[sink])
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("x")
        assert "!error" in TreeRenderer().render(sink.events())
