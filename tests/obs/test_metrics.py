"""Tests for the metrics registry: kinds, snapshots, rendering, threads."""

import threading

import pytest

from repro.obs import MetricsRegistry, get_metrics


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestKinds:
    def test_counter_accumulates(self, registry):
        counter = registry.counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_gauge_sets_and_moves(self, registry):
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.dec(4)
        assert gauge.value == 6

    def test_histogram_aggregates(self, registry):
        histogram = registry.histogram("h")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.minimum == 1.0
        assert histogram.maximum == 3.0
        assert histogram.mean == 2.0

    def test_get_or_create_returns_same_object(self, registry):
        assert registry.counter("c") is registry.counter("c")

    def test_kind_clash_raises(self, registry):
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_late_help_is_kept(self, registry):
        registry.counter("c")
        registry.counter("c", "what it counts")
        assert "what it counts" in registry.render_prometheus()


class TestSnapshot:
    def test_snapshot_shape(self, registry):
        registry.counter("c").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(0.5)
        snap = registry.snapshot()
        assert snap["c"] == 2
        assert snap["g"] == 7
        assert snap["h"]["count"] == 1
        assert snap["h"]["mean"] == 0.5

    def test_snapshot_sorted_and_plain(self, registry):
        registry.counter("b")
        registry.counter("a")
        assert list(registry.snapshot()) == ["a", "b"]

    def test_reset_drops_everything(self, registry):
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot() == {}


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self, registry):
        registry.counter("hits_total", "cache hits").inc(3)
        registry.gauge("live").set(1.5)
        text = registry.render_prometheus()
        assert "# HELP hits_total cache hits" in text
        assert "# TYPE hits_total counter" in text
        assert "hits_total 3" in text
        assert "live 1.5" in text

    def test_histogram_lines(self, registry):
        histogram = registry.histogram("lat")
        histogram.observe(0.25)
        histogram.observe(0.75)
        text = registry.render_prometheus()
        assert "# TYPE lat histogram" in text
        assert "lat_count 2" in text
        assert "lat_sum 1" in text
        assert "lat_min 0.25" in text
        assert "lat_max 0.75" in text


class TestConcurrency:
    def test_parallel_increments_are_not_lost(self, registry):
        counter = registry.counter("n")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


def test_global_registry_is_a_singleton():
    assert get_metrics() is get_metrics()
