"""Tests for the metrics registry: kinds, snapshots, rendering, threads."""

import threading

import pytest

from repro.obs import MetricsRegistry, get_metrics
from repro.obs.metrics import _fmt


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestKinds:
    def test_counter_accumulates(self, registry):
        counter = registry.counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_gauge_sets_and_moves(self, registry):
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.dec(4)
        assert gauge.value == 6

    def test_histogram_aggregates(self, registry):
        histogram = registry.histogram("h")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.minimum == 1.0
        assert histogram.maximum == 3.0
        assert histogram.mean == 2.0

    def test_get_or_create_returns_same_object(self, registry):
        assert registry.counter("c") is registry.counter("c")

    def test_kind_clash_raises(self, registry):
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_late_help_is_kept(self, registry):
        registry.counter("c")
        registry.counter("c", "what it counts")
        assert "what it counts" in registry.render_prometheus()


class TestSnapshot:
    def test_snapshot_shape(self, registry):
        registry.counter("c").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(0.5)
        snap = registry.snapshot()
        assert snap["c"] == 2
        assert snap["g"] == 7
        assert snap["h"]["count"] == 1
        assert snap["h"]["mean"] == 0.5

    def test_snapshot_sorted_and_plain(self, registry):
        registry.counter("b")
        registry.counter("a")
        assert list(registry.snapshot()) == ["a", "b"]

    def test_reset_drops_everything(self, registry):
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot() == {}


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self, registry):
        registry.counter("hits_total", "cache hits").inc(3)
        registry.gauge("live").set(1.5)
        text = registry.render_prometheus()
        assert "# HELP hits_total cache hits" in text
        assert "# TYPE hits_total counter" in text
        assert "hits_total 3" in text
        assert "live 1.5" in text

    def test_histogram_lines(self, registry):
        histogram = registry.histogram("lat")
        histogram.observe(0.25)
        histogram.observe(0.75)
        text = registry.render_prometheus()
        assert "# TYPE lat histogram" in text
        assert "lat_count 2" in text
        assert "lat_sum 1" in text
        assert "lat_min 0.25" in text
        assert "lat_max 0.75" in text


class TestLabeledFamilies:
    def test_labels_get_or_create_same_child(self, registry):
        family = registry.counter("ops_total", labelnames=("operation",))
        a = family.labels(operation="Labels")
        b = family.labels(operation="Labels")
        assert a is b
        a.inc(2)
        assert family.labels(operation="Labels").value == 2
        assert family.labels(operation="Groupby").value == 0

    def test_wrong_label_names_raise(self, registry):
        family = registry.counter("ops_total", labelnames=("operation",))
        with pytest.raises(ValueError):
            family.labels(op="Labels")
        with pytest.raises(ValueError):
            family.labels(operation="Labels", extra="x")

    def test_plain_then_labeled_clash_raises(self, registry):
        registry.counter("c")
        with pytest.raises(TypeError):
            registry.counter("c", labelnames=("operation",))

    def test_labeled_then_plain_clash_raises(self, registry):
        registry.counter("c", labelnames=("operation",))
        with pytest.raises(TypeError):
            registry.counter("c")

    def test_labelnames_mismatch_raises(self, registry):
        registry.counter("c", labelnames=("operation",))
        with pytest.raises(ValueError):
            registry.counter("c", labelnames=("operation", "phase"))

    def test_kind_clash_still_raises_for_families(self, registry):
        registry.counter("c", labelnames=("operation",))
        with pytest.raises(TypeError):
            registry.gauge("c", labelnames=("operation",))

    def test_empty_labelnames_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c", labelnames=())

    def test_labeled_histogram_renders_per_child(self, registry):
        family = registry.histogram(
            "step_seconds", "per-op step time", labelnames=("operation",)
        )
        family.labels(operation="Labels").observe(0.5)
        family.labels(operation="Groupby").observe(1.5)
        text = registry.render_prometheus()
        assert '# TYPE step_seconds histogram' in text
        assert 'step_seconds_count{operation="Labels"} 1' in text
        assert 'step_seconds_sum{operation="Groupby"} 1.5' in text

    def test_label_values_are_escaped(self, registry):
        family = registry.counter("weird_total", labelnames=("name",))
        family.labels(name='a"b\\c\nd').inc()
        text = registry.render_prometheus()
        assert 'weird_total{name="a\\"b\\\\c\\nd"} 1' in text

    def test_snapshot_nests_by_labelset(self, registry):
        family = registry.counter("ops_total", labelnames=("operation",))
        family.labels(operation="Labels").inc(3)
        snap = registry.snapshot()
        assert snap["ops_total"] == {'{operation="Labels"}': 3}


class TestRenderingEdgeCases:
    def test_empty_histogram_renders_without_min_max(self, registry):
        registry.histogram("lat")
        text = registry.render_prometheus()
        assert "lat_count 0" in text
        assert "lat_sum 0" in text
        assert "lat_min" not in text
        assert "lat_max" not in text

    def test_help_newlines_and_backslashes_escaped(self, registry):
        registry.counter("c", "line one\nline two \\ slash").inc()
        text = registry.render_prometheus()
        assert "# HELP c line one\\nline two \\\\ slash" in text
        assert "\nline two" not in text.replace("\\n", "")

    def test_fmt_integers_and_floats(self):
        assert _fmt(3.0) == "3"
        assert _fmt(-2.0) == "-2"
        assert _fmt(0.031) == "0.031"
        assert _fmt(-0.25) == "-0.25"

    def test_fmt_large_values_stay_precise(self):
        # beyond the exact-integer float range, fall back to %g rather
        # than printing a misleadingly exact integer
        assert _fmt(1e18) == "1e+18"
        assert _fmt(123456789.0) == "123456789"


class TestConcurrency:
    def test_parallel_increments_are_not_lost(self, registry):
        counter = registry.counter("n")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000

    def test_histogram_snapshot_never_tears(self, registry):
        """count and sum must come from the same lock acquisition."""
        histogram = registry.histogram("h")
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                histogram.observe(2.0)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(2000):
                snap = histogram.snapshot()
                # every observation is exactly 2.0, so any torn pair
                # shows up as sum != count * 2
                assert snap["sum"] == snap["count"] * 2.0
                if snap["count"]:
                    assert snap["mean"] == 2.0
        finally:
            stop.set()
            thread.join()


def test_global_registry_is_a_singleton():
    assert get_metrics() is get_metrics()


class TestUptime:
    """The engine_uptime_seconds gauge behind ``repro metrics``."""

    @pytest.fixture(autouse=True)
    def _clean_registry(self):
        # uptime writes to the process-global registry; keep the gauge
        # from leaking into (or out of) other tests
        get_metrics().reset()
        yield
        get_metrics().reset()

    def test_default_reads_process_wall_time(self):
        from repro.obs import metrics as metric_names
        from repro.obs.metrics import observe_uptime

        seconds = observe_uptime()
        assert seconds > 0.0
        gauge = get_metrics().gauge(metric_names.ENGINE_UPTIME)
        assert gauge.value == seconds
        assert observe_uptime() >= seconds  # monotone on re-observation

    def test_explicit_seconds_win(self):
        from repro.obs import metrics as metric_names
        from repro.obs.metrics import observe_uptime

        assert observe_uptime(12.5) == 12.5
        gauge = get_metrics().gauge(metric_names.ENGINE_UPTIME)
        assert gauge.value == 12.5

    def test_rendered_in_the_exposition(self):
        from repro.obs.metrics import observe_uptime

        observe_uptime(3.0)
        text = get_metrics().render_prometheus()
        assert "engine_uptime_seconds 3" in text
