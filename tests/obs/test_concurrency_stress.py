"""Concurrency stress tests for the obs substrate.

The ``--sessions N`` serve mode scores one chunk on N pool threads,
and every one of them increments counters and opens spans through the
process-global registry and tracer.  These tests hammer both from many
threads and assert *exact* totals -- a single lost update or torn read
fails the count.  The concurrency-safety analyzer proves
``repro.obs.metrics`` and ``repro.obs.spans`` lock-guarded statically;
this is the dynamic half of that claim.
"""

import threading

import pytest

from repro.obs import MetricsRegistry, RingBufferSink
from repro.obs.spans import Tracer

THREADS = 8
ROUNDS = 400


def hammer(worker, threads=THREADS):
    """Run ``worker(index)`` on N threads; re-raise the first failure."""
    errors: list[BaseException] = []
    barrier = threading.Barrier(threads)

    def run(index):
        try:
            barrier.wait()
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    pool = [
        threading.Thread(target=run, args=(i,)) for i in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if errors:
        raise errors[0]


class TestMetricsUnderThreads:
    def test_counter_increments_are_not_lost(self):
        registry = MetricsRegistry()

        def worker(index):
            for _ in range(ROUNDS):
                registry.counter("hits").inc()

        hammer(worker)
        assert registry.counter("hits").value == THREADS * ROUNDS

    def test_get_or_create_returns_one_object(self):
        registry = MetricsRegistry()
        seen: list = []
        lock = threading.Lock()

        def worker(index):
            metric = registry.counter("shared")
            with lock:
                seen.append(metric)
            metric.inc()

        hammer(worker)
        assert len({id(m) for m in seen}) == 1
        assert registry.counter("shared").value == THREADS

    def test_labeled_family_children_are_not_duplicated(self):
        registry = MetricsRegistry()

        def worker(index):
            family = registry.counter("per_op", labelnames=("op",))
            for _ in range(ROUNDS):
                family.labels(op=f"op{index % 2}").inc()

        hammer(worker)
        family = registry.counter("per_op", labelnames=("op",))
        snapshot = family.snapshot()
        assert len(snapshot) == 2
        assert sum(snapshot.values()) == THREADS * ROUNDS

    def test_histogram_observations_all_land(self):
        registry = MetricsRegistry()

        def worker(index):
            for _ in range(ROUNDS):
                registry.histogram("lat").observe(1.0)

        hammer(worker)
        snap = registry.histogram("lat").snapshot()
        assert snap["count"] == THREADS * ROUNDS
        assert snap["sum"] == pytest.approx(THREADS * ROUNDS)

    def test_snapshot_never_tears_under_writers(self):
        registry = MetricsRegistry()
        stop = threading.Event()

        def writer(index):
            while not stop.is_set():
                registry.counter("c").inc()
                registry.histogram("h").observe(2.0)

        pool = [
            threading.Thread(target=writer, args=(i,)) for i in range(4)
        ]
        for thread in pool:
            thread.start()
        try:
            for _ in range(200):
                snap = registry.snapshot()
                if "h" in snap and snap["h"]["count"]:
                    # mean of constant observations can never drift
                    assert snap["h"]["sum"] == pytest.approx(
                        2.0 * snap["h"]["count"]
                    )
        finally:
            stop.set()
            for thread in pool:
                thread.join()


class TestTracerUnderThreads:
    def test_span_stacks_are_thread_confined(self):
        tracer = Tracer()
        sink = RingBufferSink(capacity=None)
        tracer.add_sink(sink)

        def worker(index):
            for round_no in range(50):
                with tracer.span("outer", worker=index):
                    with tracer.span("inner", worker=index) as inner:
                        assert tracer.current_span() is inner
                assert tracer.current_span() is None

        hammer(worker)
        spans = [e for e in sink.events() if e["kind"] == "span"]
        assert len(spans) == THREADS * 50 * 2
        inners = [s for s in spans if s["name"] == "inner"]
        by_id = {s["span_id"]: s for s in spans}
        for inner in inners:
            # parentage never crosses threads: the inner span's parent
            # is an outer span opened by the same worker
            parent = by_id[inner["parent_id"]]
            assert parent["name"] == "outer"
            assert parent["attrs"]["worker"] == inner["attrs"]["worker"]

    def test_span_ids_stay_unique_across_threads(self):
        tracer = Tracer()
        sink = RingBufferSink(capacity=None)
        tracer.add_sink(sink)

        def worker(index):
            for _ in range(ROUNDS):
                with tracer.span("s"):
                    pass

        hammer(worker)
        spans = [e for e in sink.events() if e["kind"] == "span"]
        assert len(spans) == THREADS * ROUNDS
        assert len({s["span_id"] for s in spans}) == len(spans)

    def test_sink_churn_during_emission_does_not_tear(self):
        tracer = Tracer()
        keeper = RingBufferSink(capacity=None)
        tracer.add_sink(keeper)
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                transient = RingBufferSink()
                tracer.add_sink(transient)
                tracer.remove_sink(transient)

        churner = threading.Thread(target=churn)
        churner.start()
        try:

            def worker(index):
                for _ in range(ROUNDS):
                    with tracer.span("churned"):
                        pass

            hammer(worker)
        finally:
            stop.set()
            churner.join()
        spans = [e for e in keeper.events() if e["kind"] == "span"]
        # the permanent sink saw every span exactly once
        assert len(spans) == THREADS * ROUNDS
