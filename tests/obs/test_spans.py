"""Tests for the tracer: nesting, attribution, events, global instance."""

import threading

import pytest

from repro.obs import RingBufferSink, Tracer, get_ring, get_tracer


@pytest.fixture()
def traced():
    sink = RingBufferSink()
    return Tracer(sinks=[sink]), sink


class TestNesting:
    def test_child_links_to_parent(self, traced):
        tracer, sink = traced
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = sink.events()
        assert inner["name"] == "inner"
        assert inner["parent_id"] == outer["span_id"]
        assert inner["trace_id"] == outer["trace_id"] == outer["span_id"]

    def test_children_emitted_before_parent(self, traced):
        tracer, sink = traced
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [e["name"] for e in sink.events()]
        assert names == ["inner", "outer"]

    def test_siblings_share_parent(self, traced):
        tracer, sink = traced
        with tracer.span("outer") as outer:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b = sink.events()[:2]
        assert a["parent_id"] == b["parent_id"] == outer.span_id

    def test_separate_roots_get_separate_traces(self, traced):
        tracer, sink = traced
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = sink.events()
        assert first["trace_id"] != second["trace_id"]
        assert first["parent_id"] is None

    def test_explicit_parent_crosses_threads(self, traced):
        tracer, sink = traced
        with tracer.span("wave") as wave:
            # run the span wholly inside the worker thread
            def work():
                with tracer.span("step", parent=wave):
                    pass
            worker = threading.Thread(target=work)
            worker.start()
            worker.join()
        step = next(e for e in sink.events() if e["name"] == "step")
        assert step["parent_id"] == wave.span_id
        assert step["trace_id"] == wave.trace_id

    def test_thread_local_stacks_are_independent(self, traced):
        tracer, sink = traced
        seen = {}

        def work():
            seen["current"] = tracer.current_span()

        with tracer.span("outer"):
            worker = threading.Thread(target=work)
            worker.start()
            worker.join()
        assert seen["current"] is None


class TestSpanContents:
    def test_duration_and_timestamp_recorded(self, traced):
        tracer, sink = traced
        with tracer.span("timed"):
            pass
        event = sink.events()[0]
        assert event["duration_seconds"] >= 0.0
        assert event["ts"] > 0

    def test_attributes_from_kwargs_and_set(self, traced):
        tracer, sink = traced
        with tracer.span("s", color="red") as span:
            span.set("count", 3)
        attrs = sink.events()[0]["attrs"]
        assert attrs == {"color": "red", "count": 3}

    def test_exception_marks_error_and_propagates(self, traced):
        tracer, sink = traced
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        event = sink.events()[0]
        assert event["status"] == "error"
        assert event["attrs"]["error"] == "ValueError"
        # the stack is clean afterwards
        assert tracer.current_span() is None

    def test_span_ids_increase_in_creation_order(self, traced):
        tracer, sink = traced
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = sink.events()
        assert a["span_id"] < b["span_id"]


class TestPointEvents:
    def test_event_under_current_span(self, traced):
        tracer, sink = traced
        with tracer.span("parent") as parent:
            tracer.event("cache.hit", key="k")
        event = next(e for e in sink.events() if e["kind"] == "event")
        assert event["span_id"] == parent.span_id
        assert event["attrs"] == {"key": "k"}

    def test_event_outside_any_span(self, traced):
        tracer, sink = traced
        tracer.event("lonely")
        event = sink.events()[0]
        assert event["span_id"] is None


class TestGlobalTracer:
    def test_singleton_with_ring_buffer(self):
        tracer = get_tracer()
        assert tracer is get_tracer()
        ring = get_ring()
        assert ring in tracer.sinks

    def test_sinks_can_be_detached(self):
        tracer = get_tracer()
        sink = RingBufferSink()
        tracer.add_sink(sink)
        tracer.remove_sink(sink)
        assert sink not in tracer.sinks
