"""Tests for dataset export/import (pcap + label CSV)."""

import csv

import numpy as np
import pytest

from repro.datasets.export import export_dataset, export_flows_csv, import_dataset
from repro.flows import assemble_connections
from repro.traffic import AttackSpec, NetworkScenario


@pytest.fixture(scope="module")
def small_dataset():
    return NetworkScenario(
        name="export-test",
        device_counts={"thermostat": 1, "smart_hub": 1},
        duration=45.0,
        seed=55,
        attacks=(AttackSpec("port_scan", 0.3, 0.6, intensity=0.05),),
    ).generate()


class TestExportImport:
    def test_files_created(self, small_dataset, tmp_path):
        pcap_path, labels_path = export_dataset(small_dataset, tmp_path, "D")
        assert pcap_path.exists() and labels_path.exists()
        assert pcap_path.name == "D.pcap"

    def test_label_rows_align_with_packets(self, small_dataset, tmp_path):
        _, labels_path = export_dataset(small_dataset, tmp_path, "D")
        with open(labels_path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(small_dataset)
        assert sum(int(r["label"]) for r in rows) == small_dataset.n_malicious

    def test_round_trip_preserves_table(self, small_dataset, tmp_path):
        pcap_path, labels_path = export_dataset(small_dataset, tmp_path, "D")
        rebuilt = import_dataset(pcap_path, labels_path)
        original = small_dataset.sort_by_time()
        assert len(rebuilt) == len(original)
        assert np.allclose(rebuilt.ts, original.ts, atol=1e-6)
        # compare everything except the microsecond-quantised timestamps
        rebuilt.columns["ts"] = original.ts
        assert original.equals(rebuilt)

    def test_import_rejects_misaligned_labels(self, small_dataset, tmp_path):
        pcap_path, labels_path = export_dataset(small_dataset, tmp_path, "D")
        lines = labels_path.read_text().splitlines()
        labels_path.write_text("\n".join(lines[:-5]))
        with pytest.raises(ValueError, match="rows"):
            import_dataset(pcap_path, labels_path)

    def test_flows_csv(self, small_dataset, tmp_path):
        flows = assemble_connections(small_dataset)
        path = export_flows_csv(flows, tmp_path / "conn.csv")
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(flows)
        assert sum(int(r["label"]) for r in rows) == flows.n_malicious
        assert all(int(r["packets"]) >= 1 for r in rows)
