"""Tests for the dataset registry and literature metadata."""

import pytest

from repro.datasets import (
    DATASETS,
    attack_inventory,
    comparability_counts,
    dataset_ids,
    literature_table,
    load_dataset,
    load_flows,
)
from repro.datasets.literature import LITERATURE
from repro.flows import Granularity


class TestRegistryStructure:
    def test_fifteen_paper_datasets_covered(self):
        # 10 connection-granularity + 3 packet-granularity profiles;
        # P1/P2 carry multiple attack phases standing in for the
        # remaining per-day traces (see module docstring).
        assert len(dataset_ids(Granularity.CONNECTION)) == 10
        assert len(dataset_ids(Granularity.PACKET)) == 3

    def test_ids_follow_paper_naming(self):
        assert dataset_ids(Granularity.CONNECTION) == [
            f"F{i}" for i in range(10)
        ]
        assert dataset_ids(Granularity.PACKET) == ["P0", "P1", "P2"]

    def test_every_spec_names_its_source(self):
        for spec in DATASETS.values():
            assert spec.stands_in_for
            assert spec.title

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("F99")

    def test_attack_inventory_covers_all_attacks(self):
        inventory = attack_inventory()
        for spec in DATASETS.values():
            for attack in spec.attacks:
                assert spec.dataset_id in inventory[attack]

    def test_torii_profile_is_low_volume(self):
        # F5 models the stealthy Torii capture: lowest malicious share
        # of the connection datasets (drives Observation 3's asymmetry).
        flows_f5 = load_flows("F5", Granularity.CONNECTION)
        fraction_f5 = flows_f5.labels.mean()
        for other in ("F4", "F6", "F7"):
            flows = load_flows(other, Granularity.CONNECTION)
            assert fraction_f5 < flows.labels.mean()


class TestLoading:
    def test_load_is_cached(self):
        assert load_dataset("F0") is load_dataset("F0")

    def test_flows_cached_per_granularity(self):
        a = load_flows("F0", Granularity.CONNECTION)
        b = load_flows("F0", Granularity.CONNECTION)
        c = load_flows("F0", Granularity.UNI_FLOW)
        assert a is b
        assert a is not c

    def test_every_dataset_loads_with_both_classes(self):
        for dataset_id, spec in DATASETS.items():
            table = load_dataset(dataset_id)
            assert len(table) > 1000, dataset_id
            assert 0 < table.n_malicious < len(table), dataset_id

    def test_p2_is_wifi_only(self):
        table = load_dataset("P2")
        assert (table.l2 == 105).all()

    def test_connection_datasets_not_degenerate(self):
        for dataset_id in dataset_ids(Granularity.CONNECTION):
            flows = load_flows(dataset_id, Granularity.CONNECTION)
            fraction = float(flows.labels.mean())
            assert 0.01 < fraction < 0.95, (dataset_id, fraction)

    def test_datasets_have_disjoint_address_spaces(self):
        import numpy as np

        f0 = load_dataset("F0")
        f4 = load_dataset("F4")
        benign_f0 = set(np.unique(f0.src_ip[f0.label == 0]).tolist())
        benign_f4 = set(np.unique(f4.src_ip[f4.label == 0]).tolist())
        overlap = benign_f0 & benign_f4
        # the only shared endpoints may be well-known externals
        assert len(overlap) < 5


class TestLiterature:
    def test_table1_has_eleven_rows(self):
        assert len(LITERATURE) == 11
        assert len(literature_table()) == 11

    def test_table_columns(self):
        row = literature_table()[0]
        assert set(row) == {
            "Algorithm", "ML Model", "Granularity", "Datasets",
            "Reported Performance",
        }

    def test_fig1a_half_have_no_comparison(self):
        counts = comparability_counts()
        zero = sum(1 for value in counts.values() if value == 0)
        # the paper: "for half of the algorithms ... no possible
        # comparison"; our transcription yields 7/11
        assert zero >= len(counts) / 2

    def test_shared_datasets_counted(self):
        counts = comparability_counts()
        assert counts["ocsvm"] >= 1  # shares CTU IoT with zeek
        assert counts["nprint"] >= 1  # shares CICIDS2017 with smartdet
        assert counts["kitsune"] == 0  # custom dataset only
