"""Tests for application-layer payload builders/parsers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.payloads import (
    DnsMessage,
    decode_dns_name,
    dns_query,
    dns_response,
    encode_dns_name,
    http_request,
    http_response,
    mqtt_packet,
    mqtt_publish,
    parse_dns,
    parse_mqtt_type,
    telnet_login_attempt,
    MQTT_CONNECT,
    MQTT_PUBLISH,
)


class TestDnsNames:
    def test_round_trip(self):
        raw = encode_dns_name("camera.vendor-cloud.example.com")
        name, consumed = decode_dns_name(raw)
        assert name == "camera.vendor-cloud.example.com"
        assert consumed == len(raw)

    def test_trailing_dot_normalised(self):
        assert encode_dns_name("a.b.") == encode_dns_name("a.b")

    def test_rejects_oversized_label(self):
        with pytest.raises(ValueError):
            encode_dns_name("x" * 64 + ".com")

    def test_rejects_empty_label(self):
        with pytest.raises(ValueError):
            encode_dns_name("a..b")

    def test_truncated_name_rejected(self):
        with pytest.raises(ValueError):
            decode_dns_name(b"\x05abc")

    def test_compression_pointer_rejected(self):
        with pytest.raises(ValueError):
            decode_dns_name(b"\xc0\x0c")

    @given(
        st.lists(
            st.text(alphabet="abcdefghijklmnop", min_size=1, max_size=20),
            min_size=1,
            max_size=4,
        )
    )
    def test_round_trip_property(self, labels):
        name = ".".join(labels)
        decoded, _ = decode_dns_name(encode_dns_name(name))
        assert decoded == name


class TestDnsMessages:
    def test_query_parses(self):
        message = parse_dns(dns_query("hub.example.com", txid=0xBEEF))
        assert message == DnsMessage(0xBEEF, False, "hub.example.com")

    def test_response_parses(self):
        raw = dns_response("hub.example.com", address=0x01020304, txid=7)
        message = parse_dns(raw)
        assert message.is_response
        assert message.txid == 7
        assert message.qname == "hub.example.com"

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            parse_dns(b"\x00\x01")

    def test_no_question_rejected(self):
        import struct

        header = struct.pack("!HHHHHH", 1, 0, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            parse_dns(header)


class TestHttp:
    def test_request_shape(self):
        raw = http_request("device.example.com", "/status").decode("ascii")
        assert raw.startswith("GET /status HTTP/1.1\r\n")
        assert "Host: device.example.com" in raw
        assert raw.endswith("\r\n\r\n")

    def test_response_content_length(self):
        raw = http_response(200, b"hello").decode("ascii", errors="ignore")
        assert "Content-Length: 5" in raw
        assert raw.endswith("hello")

    def test_error_status_reason(self):
        raw = http_response(401).decode("ascii")
        assert "401 Unauthorized" in raw


class TestMqttAndTelnet:
    def test_packet_type_round_trip(self):
        raw = mqtt_packet(MQTT_CONNECT, b"\x00\x04MQTT")
        assert parse_mqtt_type(raw) == MQTT_CONNECT

    def test_publish_contains_topic(self):
        raw = mqtt_publish("home/thermostat/temp", b"21.5")
        assert parse_mqtt_type(raw) == MQTT_PUBLISH
        assert b"home/thermostat/temp" in raw
        assert raw.endswith(b"21.5")

    def test_oversized_payload_rejected(self):
        with pytest.raises(ValueError):
            mqtt_packet(MQTT_PUBLISH, b"x" * 200)

    def test_empty_payload_rejected_on_parse(self):
        with pytest.raises(ValueError):
            parse_mqtt_type(b"")

    def test_telnet_credentials(self):
        raw = telnet_login_attempt("root", "xc3511")
        assert raw == b"root\r\nxc3511\r\n"
