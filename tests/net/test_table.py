"""Tests for the columnar PacketTable."""

import numpy as np
import pytest

from repro.net.headers import (
    Dot11Header,
    EthernetHeader,
    IPv4Header,
    TCPHeader,
    UDPHeader,
    IPPROTO_TCP,
    IPPROTO_UDP,
)
from repro.net.packet import LinkType, Packet
from repro.net.table import PACKET_COLUMNS, PacketTable


def make_packets():
    packets = []
    for i in range(10):
        label = 1 if i >= 7 else 0
        packets.append(
            Packet(
                timestamp=float(i),
                layers=[
                    EthernetHeader(src_mac=100 + i, dst_mac=200),
                    IPv4Header(
                        src_ip=0x0A000001 + i,
                        dst_ip=0x0A0000FE,
                        protocol=IPPROTO_TCP,
                        total_length=40,
                        ttl=64,
                    ),
                    TCPHeader(src_port=1000 + i, dst_port=80, flags=0x02, window=512),
                ],
                payload=b"x" * i,
                label=label,
                attack="synflood" if label else "",
            )
        )
    return packets


class TestConstruction:
    def test_empty_table(self):
        table = PacketTable.empty()
        assert len(table) == 0
        assert table.duration == 0.0
        assert table.attacks == []

    def test_empty_with_rows_has_defaults(self):
        table = PacketTable.empty(5)
        assert len(table) == 5
        assert (table.attack_id == -1).all()
        assert (table.wlan_type == 255).all()

    def test_from_packets_columns(self):
        table = PacketTable.from_packets(make_packets())
        assert len(table) == 10
        assert table.src_port[3] == 1003
        assert table.dst_port[0] == 80
        assert (table.proto == IPPROTO_TCP).all()
        assert table.ttl[0] == 64
        assert table.window[0] == 512
        assert table.n_malicious == 3
        assert table.attacks == ["synflood"]
        assert table.attack_names() == ["synflood"]

    def test_payload_lengths_recorded(self):
        table = PacketTable.from_packets(make_packets())
        assert table.payload_len[4] == 4

    def test_keep_payloads(self):
        table = PacketTable.from_packets(make_packets(), keep_payloads=True)
        assert table.payloads[5] == b"xxxxx"

    def test_udp_ports_extracted(self):
        packet = Packet(
            timestamp=0.0,
            layers=[
                EthernetHeader(src_mac=1, dst_mac=2),
                IPv4Header(src_ip=1, dst_ip=2, protocol=IPPROTO_UDP, total_length=28),
                UDPHeader(src_port=5353, dst_port=53),
            ],
        )
        table = PacketTable.from_packets([packet])
        assert table.src_port[0] == 5353
        assert table.dst_port[0] == 53

    def test_dot11_columns(self):
        packet = Packet(
            timestamp=0.0,
            layers=[
                Dot11Header(
                    frame_type=0,
                    subtype=Dot11Header.SUBTYPE_DEAUTH,
                    addr1=0xA1,
                    addr2=0xB2,
                    addr3=0xC3,
                )
            ],
            label=1,
            attack="deauth",
        )
        table = PacketTable.from_packets([packet])
        assert table.l2[0] == int(LinkType.IEEE802_11)
        assert table.wlan_subtype[0] == Dot11Header.SUBTYPE_DEAUTH
        assert table.l3[0] == 0  # no IP layer
        assert table.src_mac[0] == 0xB2

    def test_unknown_column_raises(self):
        table = PacketTable.empty(1)
        with pytest.raises(AttributeError):
            _ = table.nonexistent_column


class TestTransforms:
    def test_select_boolean_mask(self):
        table = PacketTable.from_packets(make_packets())
        malicious = table.select(table.label == 1)
        assert len(malicious) == 3
        assert (malicious.label == 1).all()

    def test_select_preserves_payloads(self):
        table = PacketTable.from_packets(make_packets(), keep_payloads=True)
        subset = table.select(table.ts >= 8)
        assert subset.payloads == [b"x" * 8, b"x" * 9]

    def test_sort_by_time(self):
        table = PacketTable.from_packets(make_packets())
        shuffled = table.select(np.array([5, 1, 9, 0, 3, 2, 8, 4, 7, 6]))
        restored = shuffled.sort_by_time()
        assert np.array_equal(restored.ts, np.arange(10.0))

    def test_concat_remaps_attack_ids(self):
        first = PacketTable.from_packets(make_packets())
        packets = make_packets()
        for packet in packets:
            if packet.label:
                packet.attack = "scan"
        second = PacketTable.from_packets(packets)
        merged = PacketTable.concat([first, second])
        assert len(merged) == 20
        assert set(merged.attacks) == {"synflood", "scan"}
        names = merged.attack_names()
        assert sorted(names) == ["scan", "synflood"]
        # the scan rows point at the right merged id
        scan_id = merged.attacks.index("scan")
        assert (merged.attack_id[17:] == scan_id).all()

    def test_concat_empty_list(self):
        assert len(PacketTable.concat([])) == 0

    def test_concat_shares_attack_names(self):
        first = PacketTable.from_packets(make_packets())
        second = PacketTable.from_packets(make_packets())
        merged = PacketTable.concat([first, second])
        assert merged.attacks == ["synflood"]
        assert merged.n_malicious == 6

    def test_to_packets_round_trip(self):
        table = PacketTable.from_packets(make_packets())
        rebuilt = PacketTable.from_packets(table.to_packets())
        assert table.equals(rebuilt)

    def test_duration(self):
        table = PacketTable.from_packets(make_packets())
        assert table.duration == pytest.approx(9.0)


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        table = PacketTable.from_packets(make_packets())
        path = tmp_path / "table.npz"
        table.save(path)
        loaded = PacketTable.load(path)
        assert table.equals(loaded)
        assert loaded.attacks == ["synflood"]

    def test_equals_detects_differences(self):
        table = PacketTable.from_packets(make_packets())
        other = PacketTable.from_packets(make_packets())
        other.columns["ts"][0] = 99.0
        assert not table.equals(other)

    def test_summary_fields(self):
        summary = PacketTable.from_packets(make_packets()).summary()
        assert summary["packets"] == 10
        assert summary["malicious"] == 3
        assert summary["attacks"] == ["synflood"]

    def test_all_columns_defined(self):
        table = PacketTable.empty(3)
        for name in PACKET_COLUMNS:
            assert len(table.columns[name]) == 3
