"""Tests for IPv4/MAC address helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import (
    in_prefix,
    int_to_ip,
    int_to_mac,
    ip_to_int,
    mac_to_int,
    prefix_to_range,
    random_ip_in_prefix,
)


class TestIpConversion:
    def test_known_value(self):
        assert ip_to_int("10.0.0.1") == (10 << 24) + 1

    def test_zero(self):
        assert ip_to_int("0.0.0.0") == 0

    def test_broadcast(self):
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF

    def test_round_trip_known(self):
        assert int_to_ip(ip_to_int("192.168.1.77")) == "192.168.1.77"

    @pytest.mark.parametrize(
        "bad", ["256.0.0.1", "1.2.3", "a.b.c.d", "", "1.2.3.4.5", "10.0.0.-1"]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            ip_to_int(bad)

    def test_int_to_ip_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            int_to_ip(-1)
        with pytest.raises(ValueError):
            int_to_ip(2**32)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_round_trip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestMacConversion:
    def test_known_value(self):
        assert mac_to_int("00:00:00:00:00:01") == 1

    def test_dash_separator(self):
        assert mac_to_int("aa-bb-cc-dd-ee-ff") == 0xAABBCCDDEEFF

    def test_round_trip(self):
        assert int_to_mac(mac_to_int("de:ad:be:ef:00:01")) == "de:ad:be:ef:00:01"

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            mac_to_int("not-a-mac")

    def test_rejects_out_of_range_int(self):
        with pytest.raises(ValueError):
            int_to_mac(2**48)

    @given(st.integers(min_value=0, max_value=2**48 - 1))
    def test_round_trip_property(self, value):
        assert mac_to_int(int_to_mac(value)) == value


class TestPrefixes:
    def test_range_of_slash_24(self):
        low, high = prefix_to_range("192.168.1.0/24")
        assert low == ip_to_int("192.168.1.0")
        assert high == ip_to_int("192.168.1.255")

    def test_range_of_slash_32(self):
        low, high = prefix_to_range("10.1.2.3/32")
        assert low == high == ip_to_int("10.1.2.3")

    def test_range_of_slash_zero(self):
        assert prefix_to_range("0.0.0.0/0") == (0, 0xFFFFFFFF)

    def test_base_is_masked(self):
        low, _ = prefix_to_range("10.0.0.77/24")
        assert low == ip_to_int("10.0.0.0")

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            prefix_to_range("10.0.0.0/33")

    def test_rejects_missing_length(self):
        with pytest.raises(ValueError):
            prefix_to_range("10.0.0.0")

    def test_in_prefix_with_text_address(self):
        assert in_prefix("10.0.0.5", "10.0.0.0/24")
        assert not in_prefix("10.0.1.5", "10.0.0.0/24")

    def test_in_prefix_with_int_address(self):
        assert in_prefix(ip_to_int("172.16.4.1"), "172.16.0.0/16")

    def test_random_ip_stays_inside(self):
        rng = np.random.default_rng(7)
        for _ in range(100):
            address = random_ip_in_prefix(rng, "192.168.77.0/24")
            assert in_prefix(address, "192.168.77.0/24")
            # network and broadcast addresses are excluded
            assert address != ip_to_int("192.168.77.0")
            assert address != ip_to_int("192.168.77.255")

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF), st.integers(0, 32))
    def test_every_address_is_inside_its_own_prefix(self, value, length):
        prefix = f"{int_to_ip(value)}/{length}"
        assert in_prefix(value, prefix)
