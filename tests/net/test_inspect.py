"""Tests for trace analytics."""

import pytest

from repro.net.inspect import describe_trace, render_description
from repro.net.table import PacketTable
from repro.traffic import AttackSpec, NetworkScenario


@pytest.fixture(scope="module")
def trace():
    return NetworkScenario(
        name="inspect-test",
        device_counts={"camera": 1, "thermostat": 1},
        duration=60.0,
        seed=91,
        attacks=(AttackSpec("dos_udp_flood", 0.4, 0.6, intensity=0.1),),
    ).generate()


class TestDescribeTrace:
    def test_counts(self, trace):
        description = describe_trace(trace)
        assert description.n_packets == len(trace)
        assert description.total_bytes == int(trace.length.sum())
        assert description.duration_s == pytest.approx(trace.duration, abs=0.01)
        assert description.n_hosts >= 3

    def test_protocol_mix_sums_to_one(self, trace):
        description = describe_trace(trace)
        assert sum(description.protocol_mix.values()) == pytest.approx(
            1.0, abs=0.01
        )
        assert "tcp" in description.protocol_mix

    def test_top_talkers_sorted(self, trace):
        description = describe_trace(trace, top=3)
        counts = [count for _, count in description.top_talkers]
        assert counts == sorted(counts, reverse=True)
        assert len(description.top_talkers) <= 3

    def test_attack_counts(self, trace):
        description = describe_trace(trace)
        assert description.attacks.get("dos_udp_flood", 0) == trace.n_malicious
        assert description.label_fraction == pytest.approx(
            trace.n_malicious / len(trace), abs=1e-3
        )

    def test_empty_trace(self):
        description = describe_trace(PacketTable.empty())
        assert description.n_packets == 0
        assert description.protocol_mix == {}

    def test_render_mentions_key_facts(self, trace):
        text = render_description(describe_trace(trace))
        assert "packets" in text
        assert "dos_udp_flood" in text
        assert "tcp" in text
