"""Property-based invariants of PacketTable transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.table import PACKET_COLUMNS, PacketTable
from repro.traffic.builder import TraceBuilder


@st.composite
def tables(draw):
    n = draw(st.integers(0, 40))
    builder = TraceBuilder()
    for _ in range(n):
        ts = draw(st.floats(0, 1000))
        attack = draw(st.sampled_from(["", "", "scan", "flood"]))
        builder.add_tcp(
            ts,
            draw(st.integers(1, 5)),
            draw(st.integers(1, 5)),
            draw(st.integers(1, 65535)),
            draw(st.sampled_from([22, 80, 443])),
            draw(st.integers(0, 1400)),
            attack=attack,
        )
    return builder.build()


@settings(max_examples=40, deadline=None)
@given(table=tables())
def test_sort_is_idempotent_and_permutes(table):
    sorted_once = table.sort_by_time()
    sorted_twice = sorted_once.sort_by_time()
    assert sorted_once.equals(sorted_twice)
    assert len(sorted_once) == len(table)
    assert np.all(np.diff(sorted_once.ts) >= 0)
    # same multiset of lengths survives the permutation
    assert sorted(sorted_once.length.tolist()) == sorted(table.length.tolist())


@settings(max_examples=40, deadline=None)
@given(table=tables(), data=st.data())
def test_select_preserves_row_content(table, data):
    if len(table) == 0:
        return
    mask = np.array(
        data.draw(
            st.lists(st.booleans(), min_size=len(table), max_size=len(table))
        )
    )
    subset = table.select(mask)
    assert len(subset) == mask.sum()
    indices = np.flatnonzero(mask)
    for name in PACKET_COLUMNS:
        assert np.array_equal(subset.columns[name], table.columns[name][indices])


@settings(max_examples=40, deadline=None)
@given(left=tables(), right=tables())
def test_concat_lengths_and_labels(left, right):
    merged = PacketTable.concat([left, right])
    assert len(merged) == len(left) + len(right)
    assert merged.n_malicious == left.n_malicious + right.n_malicious
    # attack names are preserved through id remapping
    assert set(merged.attack_names()) == set(
        left.attack_names()
    ) | set(right.attack_names())


@settings(max_examples=20, deadline=None)
@given(table=tables())
def test_concat_with_empty_is_identity(table):
    merged = PacketTable.concat([table, PacketTable.empty()])
    assert merged.equals(
        PacketTable(columns=merged.columns, attacks=merged.attacks)
    )
    assert len(merged) == len(table)
    for name in PACKET_COLUMNS:
        assert np.array_equal(merged.columns[name], table.columns[name])


@settings(max_examples=20, deadline=None)
@given(table=tables())
def test_save_load_round_trip_property(table, tmp_path_factory):
    path = tmp_path_factory.mktemp("tables") / "t.npz"
    table.save(path)
    assert PacketTable.load(path).equals(table)


@settings(max_examples=30, deadline=None)
@given(table=tables())
def test_packets_round_trip_property(table):
    rebuilt = PacketTable.from_packets(table.to_packets())
    assert rebuilt.equals(table)
