"""Round-trip and error-path tests for the binary header codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.checksum import internet_checksum
from repro.net.headers import (
    ARPHeader,
    Dot11Header,
    EthernetHeader,
    HeaderError,
    ICMPHeader,
    IPv4Header,
    IPv6Header,
    TCPFlags,
    TCPHeader,
    UDPHeader,
    ETHERTYPE_ARP,
    IPPROTO_TCP,
)


class TestChecksum:
    def test_known_vector(self):
        # RFC 1071 example data.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_odd_length_is_padded(self):
        assert internet_checksum(b"\xff") == internet_checksum(b"\xff\x00")

    def test_checksum_of_zeroes(self):
        assert internet_checksum(b"\x00" * 8) == 0xFFFF

    @given(st.binary(min_size=0, max_size=64))
    def test_verification_property(self, data):
        # Inserting the computed checksum makes the total sum verify to 0.
        checksum = internet_checksum(data)
        padded = data + b"\x00" if len(data) % 2 else data
        verified = internet_checksum(padded + checksum.to_bytes(2, "big"))
        assert verified == 0


class TestEthernet:
    def test_round_trip(self):
        header = EthernetHeader(src_mac=0xAABBCCDDEEFF, dst_mac=0x112233445566)
        decoded, consumed = EthernetHeader.decode(header.encode())
        assert decoded == header
        assert consumed == 14

    def test_truncated(self):
        with pytest.raises(HeaderError):
            EthernetHeader.decode(b"\x00" * 13)

    @given(
        st.integers(0, 2**48 - 1),
        st.integers(0, 2**48 - 1),
        st.integers(0, 2**16 - 1),
    )
    def test_round_trip_property(self, src, dst, ethertype):
        header = EthernetHeader(src_mac=src, dst_mac=dst, ethertype=ethertype)
        assert EthernetHeader.decode(header.encode())[0] == header


class TestIPv4:
    def test_round_trip(self):
        header = IPv4Header(
            src_ip=0x0A000001,
            dst_ip=0x0A000002,
            protocol=IPPROTO_TCP,
            total_length=40,
            ttl=63,
            identification=777,
        )
        decoded, consumed = IPv4Header.decode(header.encode())
        assert consumed == 20
        assert decoded.src_ip == header.src_ip
        assert decoded.dst_ip == header.dst_ip
        assert decoded.protocol == header.protocol
        assert decoded.ttl == 63
        assert decoded.identification == 777

    def test_checksum_is_valid(self):
        raw = IPv4Header(src_ip=1, dst_ip=2, protocol=6).encode()
        assert internet_checksum(raw) == 0

    def test_rejects_ipv6_version(self):
        raw = bytearray(IPv4Header(src_ip=1, dst_ip=2, protocol=6).encode())
        raw[0] = (6 << 4) | 5
        with pytest.raises(HeaderError):
            IPv4Header.decode(bytes(raw))

    def test_rejects_bad_ihl(self):
        raw = bytearray(IPv4Header(src_ip=1, dst_ip=2, protocol=6).encode())
        raw[0] = (4 << 4) | 4
        with pytest.raises(HeaderError):
            IPv4Header.decode(bytes(raw))

    def test_truncated(self):
        with pytest.raises(HeaderError):
            IPv4Header.decode(b"\x45" + b"\x00" * 10)


class TestIPv6:
    def test_round_trip(self):
        header = IPv6Header(
            src_ip=bytes(range(16)),
            dst_ip=bytes(range(16, 32)),
            next_header=17,
            payload_length=100,
            hop_limit=255,
        )
        decoded, consumed = IPv6Header.decode(header.encode())
        assert consumed == 40
        assert decoded == header

    def test_rejects_short_addresses(self):
        with pytest.raises(HeaderError):
            IPv6Header(src_ip=b"\x00" * 4, dst_ip=b"\x00" * 16, next_header=6)

    def test_rejects_wrong_version(self):
        raw = bytearray(
            IPv6Header(
                src_ip=b"\x00" * 16, dst_ip=b"\x00" * 16, next_header=6
            ).encode()
        )
        raw[0] = 0x45
        with pytest.raises(HeaderError):
            IPv6Header.decode(bytes(raw))


class TestTCP:
    def test_round_trip(self):
        header = TCPHeader(
            src_port=12345,
            dst_port=80,
            seq=111,
            ack=222,
            flags=int(TCPFlags.SYN | TCPFlags.ACK),
            window=1024,
        )
        decoded, consumed = TCPHeader.decode(header.encode())
        assert consumed == 20
        assert decoded == header

    def test_flags_enum_values(self):
        assert int(TCPFlags.SYN) == 0x02
        assert int(TCPFlags.ACK) == 0x10
        assert int(TCPFlags.RST) == 0x04

    def test_checksum_verifies(self):
        header = TCPHeader(src_port=1000, dst_port=443)
        payload = b"hello"
        raw = header.encode_with_checksum(0x0A000001, 0x0A000002, payload)
        from repro.net.checksum import tcp_udp_pseudo_header

        pseudo = tcp_udp_pseudo_header(
            0x0A000001, 0x0A000002, IPPROTO_TCP, len(raw) + len(payload)
        )
        assert internet_checksum(pseudo + raw + payload) == 0

    def test_truncated(self):
        with pytest.raises(HeaderError):
            TCPHeader.decode(b"\x00" * 19)

    @given(
        st.integers(0, 65535),
        st.integers(0, 65535),
        st.integers(0, 2**32 - 1),
        st.integers(0, 255),
    )
    def test_round_trip_property(self, sport, dport, seq, flags):
        header = TCPHeader(src_port=sport, dst_port=dport, seq=seq, flags=flags)
        assert TCPHeader.decode(header.encode())[0] == header


class TestUDPAndICMP:
    def test_udp_round_trip(self):
        header = UDPHeader(src_port=5353, dst_port=53, length=30)
        decoded, consumed = UDPHeader.decode(header.encode())
        assert consumed == 8
        assert decoded == header

    def test_udp_truncated(self):
        with pytest.raises(HeaderError):
            UDPHeader.decode(b"\x00" * 7)

    def test_icmp_round_trip(self):
        header = ICMPHeader(icmp_type=ICMPHeader.ECHO_REQUEST, rest=0x00010001)
        decoded, consumed = ICMPHeader.decode(header.encode(fill_checksum=False))
        assert consumed == 8
        assert decoded.icmp_type == ICMPHeader.ECHO_REQUEST
        assert decoded.rest == 0x00010001

    def test_icmp_checksum_covers_payload(self):
        payload = b"ping-data"
        raw = ICMPHeader(icmp_type=8).encode(payload)
        assert internet_checksum(raw + payload) == 0


class TestARP:
    def test_round_trip(self):
        header = ARPHeader(
            operation=ARPHeader.REPLY,
            sender_mac=0xAABBCCDDEEFF,
            sender_ip=0x0A000001,
            target_mac=0x112233445566,
            target_ip=0x0A000002,
        )
        decoded, consumed = ARPHeader.decode(header.encode())
        assert consumed == 28
        assert decoded == header

    def test_rejects_non_ethernet_arp(self):
        raw = bytearray(
            ARPHeader(
                operation=1, sender_mac=0, sender_ip=0, target_mac=0, target_ip=0
            ).encode()
        )
        raw[1] = 9  # bogus hardware type
        with pytest.raises(HeaderError):
            ARPHeader.decode(bytes(raw))


class TestDot11:
    def test_round_trip(self):
        header = Dot11Header(
            frame_type=Dot11Header.TYPE_MANAGEMENT,
            subtype=Dot11Header.SUBTYPE_DEAUTH,
            addr1=0x111111111111,
            addr2=0x222222222222,
            addr3=0x333333333333,
            duration=314,
            seq_ctrl=0x10,
        )
        decoded, consumed = Dot11Header.decode(header.encode())
        assert consumed == 24
        assert decoded == header

    def test_deauth_subtype_constant(self):
        assert Dot11Header.SUBTYPE_DEAUTH == 12

    def test_truncated(self):
        with pytest.raises(HeaderError):
            Dot11Header.decode(b"\x00" * 23)

    @given(st.integers(0, 2), st.integers(0, 15))
    def test_type_subtype_round_trip(self, frame_type, subtype):
        header = Dot11Header(
            frame_type=frame_type, subtype=subtype, addr1=1, addr2=2, addr3=3
        )
        decoded, _ = Dot11Header.decode(header.encode())
        assert decoded.frame_type == frame_type
        assert decoded.subtype == subtype
