"""Tests for packet parsing/encoding and pcap round-trips."""

import struct

import pytest

from repro.net.headers import (
    ARPHeader,
    Dot11Header,
    EthernetHeader,
    ICMPHeader,
    IPv4Header,
    TCPHeader,
    UDPHeader,
    ETHERTYPE_ARP,
    IPPROTO_TCP,
    IPPROTO_UDP,
)
from repro.net.packet import LinkType, Packet
from repro.net.pcap import PcapFormatError, PcapReader, read_pcap, write_pcap


def make_tcp_packet(ts=1.0, payload=b"data", flags=0x02):
    return Packet(
        timestamp=ts,
        layers=[
            EthernetHeader(src_mac=1, dst_mac=2),
            IPv4Header(
                src_ip=0x0A000001,
                dst_ip=0x0A000002,
                protocol=IPPROTO_TCP,
                total_length=40 + len(payload),
            ),
            TCPHeader(src_port=4444, dst_port=80, flags=flags),
        ],
        payload=payload,
    )


class TestPacketModel:
    def test_layer_lookup(self):
        packet = make_tcp_packet()
        assert packet.layer(TCPHeader).dst_port == 80
        assert packet.layer(UDPHeader) is None
        assert packet.has(IPv4Header)

    def test_wire_length(self):
        packet = make_tcp_packet(payload=b"abcd")
        assert packet.wire_length == 14 + 20 + 20 + 4

    def test_link_type_detection(self):
        assert make_tcp_packet().link_type == LinkType.ETHERNET
        dot11 = Packet(
            timestamp=0.0,
            layers=[Dot11Header(frame_type=0, subtype=12, addr1=1, addr2=2, addr3=3)],
        )
        assert dot11.link_type == LinkType.IEEE802_11

    def test_parse_round_trip_tcp(self):
        original = make_tcp_packet(payload=b"hello")
        parsed = Packet.parse(original.encode(), timestamp=1.0)
        assert parsed.layer(EthernetHeader).src_mac == 1
        assert parsed.layer(IPv4Header).dst_ip == 0x0A000002
        assert parsed.layer(TCPHeader).src_port == 4444
        assert parsed.payload == b"hello"

    def test_parse_round_trip_udp(self):
        packet = Packet(
            timestamp=0.0,
            layers=[
                EthernetHeader(src_mac=9, dst_mac=8),
                IPv4Header(src_ip=1, dst_ip=2, protocol=IPPROTO_UDP, total_length=36),
                UDPHeader(src_port=5000, dst_port=53, length=16),
            ],
            payload=b"12345678",
        )
        parsed = Packet.parse(packet.encode())
        assert parsed.layer(UDPHeader).dst_port == 53
        assert parsed.payload == b"12345678"

    def test_parse_round_trip_arp(self):
        packet = Packet(
            timestamp=0.0,
            layers=[
                EthernetHeader(src_mac=1, dst_mac=0xFFFFFFFFFFFF, ethertype=ETHERTYPE_ARP),
                ARPHeader(
                    operation=1, sender_mac=1, sender_ip=10, target_mac=0, target_ip=20
                ),
            ],
        )
        parsed = Packet.parse(packet.encode())
        assert parsed.layer(ARPHeader).target_ip == 20

    def test_parse_round_trip_icmp(self):
        packet = Packet(
            timestamp=0.0,
            layers=[
                EthernetHeader(src_mac=1, dst_mac=2),
                IPv4Header(src_ip=1, dst_ip=2, protocol=1, total_length=28),
                ICMPHeader(icmp_type=8),
            ],
        )
        parsed = Packet.parse(packet.encode())
        assert parsed.layer(ICMPHeader).icmp_type == 8

    def test_parse_dot11(self):
        original = Packet(
            timestamp=2.0,
            layers=[
                Dot11Header(
                    frame_type=0,
                    subtype=Dot11Header.SUBTYPE_DEAUTH,
                    addr1=0xA,
                    addr2=0xB,
                    addr3=0xC,
                )
            ],
            payload=b"\x07\x00",
        )
        parsed = Packet.parse(
            original.encode(), timestamp=2.0, link_type=LinkType.IEEE802_11
        )
        assert parsed.layer(Dot11Header).subtype == Dot11Header.SUBTYPE_DEAUTH
        assert parsed.payload == b"\x07\x00"

    def test_garbage_beyond_ethernet_becomes_payload(self):
        ether = EthernetHeader(src_mac=1, dst_mac=2, ethertype=0x0800)
        raw = ether.encode() + b"\x00\x01\x02"  # not a valid IPv4 header
        parsed = Packet.parse(raw)
        assert parsed.payload == b"\x00\x01\x02"
        assert parsed.layer(IPv4Header) is None


class TestPcap:
    def test_write_read_round_trip(self, tmp_path):
        packets = [make_tcp_packet(ts=float(i), payload=bytes([i] * i)) for i in range(1, 20)]
        path = tmp_path / "trace.pcap"
        write_pcap(path, packets)
        loaded = read_pcap(path)
        assert len(loaded) == len(packets)
        for original, parsed in zip(packets, loaded):
            assert parsed.timestamp == pytest.approx(original.timestamp, abs=1e-6)
            assert parsed.layer(TCPHeader).src_port == 4444
            assert parsed.payload == original.payload

    def test_dot11_link_type_round_trip(self, tmp_path):
        packets = [
            Packet(
                timestamp=0.5,
                layers=[
                    Dot11Header(frame_type=0, subtype=12, addr1=1, addr2=2, addr3=3)
                ],
            )
        ]
        path = tmp_path / "wifi.pcap"
        write_pcap(path, packets)
        reader = PcapReader(path)
        loaded = list(reader)
        assert reader.link_type == LinkType.IEEE802_11
        assert loaded[0].layer(Dot11Header).subtype == 12

    def test_subsecond_timestamps(self, tmp_path):
        packets = [make_tcp_packet(ts=1.234567)]
        path = tmp_path / "ts.pcap"
        write_pcap(path, packets)
        loaded = read_pcap(path)
        assert loaded[0].timestamp == pytest.approx(1.234567, abs=1e-6)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.pcap"
        path.write_bytes(b"")
        with pytest.raises(PcapFormatError):
            list(PcapReader(path))

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 24)
        with pytest.raises(PcapFormatError):
            list(PcapReader(path))

    def test_truncated_record_rejected(self, tmp_path):
        path = tmp_path / "trunc.pcap"
        write_pcap(path, [make_tcp_packet()])
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(PcapFormatError):
            list(PcapReader(path))

    def test_big_endian_capture_is_read(self, tmp_path):
        # Hand-assemble a big-endian microsecond capture with one record.
        packet = make_tcp_packet(ts=3.0)
        raw = packet.encode()
        header = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1)
        record = struct.pack(">IIII", 3, 0, len(raw), len(raw)) + raw
        path = tmp_path / "be.pcap"
        path.write_bytes(header + record)
        loaded = read_pcap(path)
        assert len(loaded) == 1
        assert loaded[0].timestamp == pytest.approx(3.0)
        assert loaded[0].layer(TCPHeader).dst_port == 80

    def test_raw_records(self, tmp_path):
        path = tmp_path / "raw.pcap"
        write_pcap(path, [make_tcp_packet(ts=9.0, payload=b"xyz")])
        reader = PcapReader(path)
        records = list(reader.records(raw=True))
        assert len(records) == 1
        timestamp, data = records[0]
        assert timestamp == pytest.approx(9.0)
        assert data.endswith(b"xyz")
