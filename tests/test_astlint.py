"""Tests for the repo-wide AST lint gate (tools/astlint.py)."""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
ASTLINT = REPO_ROOT / "tools" / "astlint.py"

sys.path.insert(0, str(REPO_ROOT / "tools"))

import astlint  # noqa: E402


def violations_for(tmp_path, source):
    path = tmp_path / "module.py"
    path.write_text(source)
    return astlint.lint_file(path)


class TestUnseededRandomness:
    def test_legacy_global_rng_flagged(self, tmp_path):
        found = violations_for(
            tmp_path, "import numpy as np\nx = np.random.rand(3)\n"
        )
        assert [v.code for v in found] == ["AL001"]

    def test_unseeded_default_rng_flagged(self, tmp_path):
        found = violations_for(
            tmp_path, "import numpy as np\nrng = np.random.default_rng()\n"
        )
        assert [v.code for v in found] == ["AL001"]

    def test_seeded_default_rng_ok(self, tmp_path):
        found = violations_for(
            tmp_path, "import numpy as np\nrng = np.random.default_rng(7)\n"
        )
        assert found == []

    def test_stdlib_global_rng_flagged(self, tmp_path):
        found = violations_for(
            tmp_path, "import random\nx = random.choice([1, 2])\n"
        )
        assert [v.code for v in found] == ["AL001"]

    def test_seeded_random_instance_ok(self, tmp_path):
        found = violations_for(
            tmp_path,
            "import random\nrng = random.Random(7)\nx = rng.choice([1])\n",
        )
        assert found == []

    def test_pragma_disables_line(self, tmp_path):
        found = violations_for(
            tmp_path,
            "import numpy as np\n"
            "x = np.random.rand(3)  # astlint: disable\n",
        )
        assert found == []


class TestMutableDefaults:
    def test_list_literal_default_flagged(self, tmp_path):
        found = violations_for(tmp_path, "def f(xs=[]):\n    return xs\n")
        assert [v.code for v in found] == ["AL002"]

    def test_dict_call_default_flagged(self, tmp_path):
        found = violations_for(tmp_path, "def f(m=dict()):\n    return m\n")
        assert [v.code for v in found] == ["AL002"]

    def test_kwonly_default_flagged(self, tmp_path):
        found = violations_for(
            tmp_path, "def f(*, xs={1: 2}):\n    return xs\n"
        )
        assert [v.code for v in found] == ["AL002"]

    def test_none_default_ok(self, tmp_path):
        found = violations_for(tmp_path, "def f(xs=None):\n    return xs\n")
        assert found == []


class TestRegisterOperation:
    HEADER = (
        "import numpy as np\n"
        "from repro.core.operations import register_operation\n"
        "from repro.core.types import ValueType\n"
    )

    def test_annotation_mismatch_flagged(self, tmp_path):
        found = violations_for(
            tmp_path,
            self.HEADER
            + "@register_operation('X', (ValueType.PACKETS,),"
            " ValueType.FEATURES)\n"
            "def _x(inputs, params) -> PacketTable:\n    return inputs[0]\n",
        )
        assert [v.code for v in found] == ["AL003"]

    def test_matching_annotation_ok(self, tmp_path):
        found = violations_for(
            tmp_path,
            self.HEADER
            + "@register_operation('X', (ValueType.PACKETS,),"
            " ValueType.FEATURES)\n"
            "def _x(inputs, params) -> np.ndarray:\n"
            "    return np.zeros((1, 1))\n",
        )
        assert found == []

    def test_wrong_arity_flagged(self, tmp_path):
        found = violations_for(
            tmp_path,
            self.HEADER
            + "@register_operation('X', (ValueType.PACKETS,),"
            " ValueType.ANY)\n"
            "def _x(inputs) -> object:\n    return inputs[0]\n",
        )
        assert [v.code for v in found] == ["AL003"]


class TestWallClock:
    def src_violations_for(self, tmp_path, source):
        src_dir = tmp_path / "src"
        src_dir.mkdir()
        path = src_dir / "module.py"
        path.write_text(source)
        return astlint.lint_file(path)

    def test_time_time_flagged_in_src(self, tmp_path):
        found = self.src_violations_for(
            tmp_path, "import time\nstarted = time.time()\n"
        )
        assert [v.code for v in found] == ["AL004"]

    def test_perf_counter_ok(self, tmp_path):
        found = self.src_violations_for(
            tmp_path, "import time\nstarted = time.perf_counter()\n"
        )
        assert found == []

    def test_time_time_allowed_outside_src(self, tmp_path):
        found = violations_for(
            tmp_path, "import time\nstarted = time.time()\n"
        )
        assert found == []

    def test_pragma_disables_line(self, tmp_path):
        found = self.src_violations_for(
            tmp_path,
            "import time\nstarted = time.time()  # astlint: disable\n",
        )
        assert found == []


class TestOperationMutation:
    HEADER = (
        "import numpy as np\n"
        "from repro.core.operations import register_operation\n"
        "from repro.core.types import ValueType\n"
    )
    DECORATOR = (
        "@register_operation('X', (ValueType.PACKETS,), ValueType.FEATURES)\n"
    )

    def test_input_mutation_flagged(self, tmp_path):
        found = violations_for(
            tmp_path,
            self.HEADER + self.DECORATOR
            + "def _x(inputs, params) -> np.ndarray:\n"
            "    inputs[0].sort()\n"
            "    return np.zeros((1, 1))\n",
        )
        assert [v.code for v in found] == ["AL005"]

    def test_params_mutation_flagged(self, tmp_path):
        found = violations_for(
            tmp_path,
            self.HEADER + self.DECORATOR
            + "def _x(inputs, params) -> np.ndarray:\n"
            "    params['limit'] = 3\n"
            "    return np.zeros((1, 1))\n",
        )
        assert [v.code for v in found] == ["AL005"]

    def test_copy_then_mutate_ok(self, tmp_path):
        found = violations_for(
            tmp_path,
            self.HEADER + self.DECORATOR
            + "def _x(inputs, params) -> np.ndarray:\n"
            "    x = inputs[0].copy()\n"
            "    x.sort()\n"
            "    return x\n",
        )
        assert found == []

    def test_undecorated_function_not_checked(self, tmp_path):
        found = violations_for(
            tmp_path,
            "def helper(inputs, params):\n"
            "    inputs[0].sort()\n"
            "    return inputs[0]\n",
        )
        assert found == []


class TestModuleState:
    def repro_core_violations_for(self, tmp_path, source):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        path = pkg / "module.py"
        path.write_text(source)
        return astlint.lint_file(path)

    def test_lowercase_mutable_global_flagged(self, tmp_path):
        found = self.repro_core_violations_for(
            tmp_path, "registry = {}\n"
        )
        assert [v.code for v in found] == ["AL006"]

    def test_upper_case_constant_ok(self, tmp_path):
        found = self.repro_core_violations_for(
            tmp_path,
            "REGISTRY = {}\n_TABLE = {'a': 1}\n__all__ = []\n"
            "cache = {'a': 1}\n",
        )
        assert [v.code for v in found] == ["AL006"]
        assert found[0].line == 4  # only the lowercase binding

    def test_outside_critical_packages_ok(self, tmp_path):
        found = violations_for(tmp_path, "registry = {}\n")
        assert found == []


class TestExceptionSwallowing:
    def src_violations_for(self, tmp_path, source):
        src_dir = tmp_path / "src"
        src_dir.mkdir(exist_ok=True)
        path = src_dir / "module.py"
        path.write_text(source)
        return astlint.lint_file(path)

    def test_bare_except_flagged(self, tmp_path):
        found = self.src_violations_for(
            tmp_path,
            "try:\n    work()\nexcept:\n    handle()\n",
        )
        assert [v.code for v in found] == ["AL007"]
        assert "bare" in found[0].message

    def test_pass_only_exception_handler_flagged(self, tmp_path):
        found = self.src_violations_for(
            tmp_path,
            "try:\n    work()\nexcept Exception:\n    pass\n",
        )
        assert [v.code for v in found] == ["AL007"]
        assert "swallows" in found[0].message

    def test_ellipsis_body_flagged(self, tmp_path):
        found = self.src_violations_for(
            tmp_path,
            "try:\n    work()\nexcept BaseException:\n    ...\n",
        )
        assert [v.code for v in found] == ["AL007"]

    def test_exception_in_tuple_flagged(self, tmp_path):
        found = self.src_violations_for(
            tmp_path,
            "try:\n    work()\nexcept (ValueError, Exception):\n    pass\n",
        )
        assert [v.code for v in found] == ["AL007"]

    def test_handler_that_records_ok(self, tmp_path):
        found = self.src_violations_for(
            tmp_path,
            "try:\n    work()\nexcept Exception as exc:\n"
            "    log(exc)\n    raise\n",
        )
        assert found == []

    def test_specific_type_pass_ok(self, tmp_path):
        # a pass-only handler for a *named* exception is a deliberate
        # "this specific failure is fine" -- not AL007's target
        found = self.src_violations_for(
            tmp_path,
            "try:\n    work()\nexcept KeyError:\n    pass\n",
        )
        assert found == []

    def test_outside_src_ok(self, tmp_path):
        found = violations_for(
            tmp_path, "try:\n    work()\nexcept:\n    pass\n"
        )
        assert found == []

    def test_waiver_respected(self, tmp_path):
        found = self.src_violations_for(
            tmp_path,
            "try:\n    work()\n"
            "except Exception:  # astlint: disable\n    pass\n",
        )
        assert found == []


class TestBuiltinHash:
    def src_violations_for(self, tmp_path, source):
        src_dir = tmp_path / "src"
        src_dir.mkdir(exist_ok=True)
        path = src_dir / "module.py"
        path.write_text(source)
        return astlint.lint_file(path)

    def test_builtin_hash_flagged(self, tmp_path):
        found = self.src_violations_for(
            tmp_path, "def key(params):\n    return hash(str(params))\n"
        )
        assert [v.code for v in found] == ["AL008"]
        assert "PYTHONHASHSEED" in found[0].message

    def test_hashlib_ok(self, tmp_path):
        found = self.src_violations_for(
            tmp_path,
            "import hashlib\n"
            "def key(params):\n"
            "    return hashlib.sha256(str(params).encode()).hexdigest()\n",
        )
        assert found == []

    def test_method_named_hash_ok(self, tmp_path):
        found = self.src_violations_for(
            tmp_path, "def key(obj):\n    return obj.hash()\n"
        )
        assert found == []

    def test_outside_src_ok(self, tmp_path):
        found = violations_for(
            tmp_path, "def key(params):\n    return hash(str(params))\n"
        )
        assert found == []

    def test_waiver_respected(self, tmp_path):
        found = self.src_violations_for(
            tmp_path,
            "def key(p):\n"
            "    return hash(p)  # astlint: disable\n",
        )
        assert found == []


class TestRowLoopGate:
    HEADER = (
        "import numpy as np\n"
        "from repro.core.operations import register_batch,"
        " register_operation\n"
        "from repro.core.types import ValueType\n"
    )
    DECORATOR = (
        "@register_operation('X', (ValueType.PACKETS,), ValueType.FEATURES)\n"
    )
    LOOPY_BODY = (
        "def _x(inputs, params) -> np.ndarray:\n"
        "    out = np.zeros((len(inputs[0]), 1))\n"
        "    for i, size in enumerate(inputs[0].length):\n"
        "        out[i, 0] = float(size)\n"
        "    return out\n"
    )

    def test_row_loop_in_batchable_op_flagged(self, tmp_path):
        found = violations_for(
            tmp_path, self.HEADER + self.DECORATOR + self.LOOPY_BODY
        )
        assert [v.code for v in found] == ["AL009"]
        assert "elementwise" in found[0].message
        assert "register_batch" in found[0].message

    def test_batch_declaration_exempts_the_scalar_body(self, tmp_path):
        found = violations_for(
            tmp_path,
            self.HEADER + self.DECORATOR + self.LOOPY_BODY
            + "@register_batch('X')\n"
            "def _x_batch(inputs, params) -> np.ndarray:\n"
            "    return inputs[0].length.astype(np.float64)"
            ".reshape(-1, 1)\n",
        )
        assert found == []

    def test_row_loop_in_batch_body_flagged(self, tmp_path):
        found = violations_for(
            tmp_path,
            self.HEADER + self.DECORATOR
            + "def _x(inputs, params) -> np.ndarray:\n"
            "    return inputs[0].length.astype(np.float64)"
            ".reshape(-1, 1)\n"
            "@register_batch('X')\n"
            + self.LOOPY_BODY.replace("def _x", "def _x_batch"),
        )
        assert [v.code for v in found] == ["AL009"]
        assert "batch implementation" in found[0].message

    def test_sequential_op_may_loop(self, tmp_path):
        # a loop-carried accumulator makes the op windowed-sequential:
        # there is nothing to vectorize, so AL009 stays quiet
        found = violations_for(
            tmp_path,
            self.HEADER + self.DECORATOR
            + "def _x(inputs, params) -> np.ndarray:\n"
            "    total = 0.0\n"
            "    out = np.zeros((len(inputs[0]), 1))\n"
            "    for i, size in enumerate(inputs[0].length):\n"
            "        total += float(size)\n"
            "        out[i, 0] = total\n"
            "    return out\n",
        )
        assert found == []

    def test_loop_over_params_ok(self, tmp_path):
        found = violations_for(
            tmp_path,
            self.HEADER + self.DECORATOR
            + "def _x(inputs, params) -> np.ndarray:\n"
            "    cols = []\n"
            "    for field in params['fields']:\n"
            "        cols.append(getattr(inputs[0], field))\n"
            "    return np.stack(cols, axis=1).astype(np.float64)\n",
        )
        assert found == []

    def test_pragma_disables_line(self, tmp_path):
        source = self.HEADER + self.DECORATOR + self.LOOPY_BODY.replace(
            "for i, size in enumerate(inputs[0].length):",
            "for i, size in enumerate(inputs[0].length):"
            "  # astlint: disable",
        )
        assert violations_for(tmp_path, source) == []


class TestStreamStateGate:
    HEADER = "from repro.core.operations import register_stream\n"

    def test_leaky_stream_body_flagged(self, tmp_path):
        found = violations_for(
            tmp_path,
            self.HEADER
            + "@register_stream('X')\n"
            "def _x_stream(inputs, params, state):\n"
            "    rows = state.setdefault('rows', [])\n"
            "    rows.append(inputs[0])\n"
            "    return inputs[0]\n",
        )
        assert [v.code for v in found] == ["AL010"]
        assert "carried stream state" in found[0].message

    def test_stream_body_with_eviction_ok(self, tmp_path):
        found = violations_for(
            tmp_path,
            self.HEADER
            + "@register_stream('X')\n"
            "def _x_stream(inputs, params, state):\n"
            "    state[params['key']] = inputs[0]\n"
            "    state.pop(params['old'], None)\n"
            "    return inputs[0]\n",
        )
        assert found == []

    def test_fixed_key_slot_ok(self, tmp_path):
        found = violations_for(
            tmp_path,
            self.HEADER
            + "@register_stream('X')\n"
            "def _x_stream(inputs, params, state):\n"
            "    ks = state.get('kitsune')\n"
            "    if ks is None:\n"
            "        ks = object()\n"
            "        state['kitsune'] = ks\n"
            "    return inputs[0]\n",
        )
        assert found == []

    def test_leaky_detector_class_flagged(self, tmp_path):
        found = violations_for(
            tmp_path,
            "class LeakyDetector:\n"
            "    def __init__(self):\n"
            "        self._seen = {}\n"
            "    def process_chunk(self, chunk):\n"
            "        for key in chunk:\n"
            "            self._seen[key] = chunk\n"
            "        return []\n",
        )
        assert [v.code for v in found] == ["AL010"]
        assert "bound their memory" in found[0].message

    def test_detector_with_eviction_path_ok(self, tmp_path):
        found = violations_for(
            tmp_path,
            "class BoundedDetector:\n"
            "    def __init__(self):\n"
            "        self._seen = {}\n"
            "    def _evict_expired(self, now):\n"
            "        for key in list(self._seen):\n"
            "            del self._seen[key]\n"
            "    def process_chunk(self, chunk):\n"
            "        for key in chunk:\n"
            "            self._seen[key] = chunk\n"
            "        self._evict_expired(0.0)\n"
            "        return []\n",
        )
        assert found == []

    def test_undecorated_state_function_not_checked(self, tmp_path):
        found = violations_for(
            tmp_path,
            "def helper(inputs, params, state):\n"
            "    state[params['key']] = inputs[0]\n"
            "    return inputs[0]\n",
        )
        assert found == []

    def test_pragma_disables_line(self, tmp_path):
        found = violations_for(
            tmp_path,
            self.HEADER
            + "@register_stream('X')\n"
            "def _x_stream(inputs, params, state):\n"
            "    state[params['key']] = inputs[0]  # astlint: disable\n"
            "    return inputs[0]\n",
        )
        assert found == []


class TestLockDiscipline:
    def serve_violations_for(self, tmp_path, source):
        serve_dir = tmp_path / "serve"
        serve_dir.mkdir(exist_ok=True)
        path = serve_dir / "module.py"
        path.write_text(source)
        return astlint.lint_file(path)

    def test_bare_acquire_release_flagged(self, tmp_path):
        found = violations_for(
            tmp_path,
            "import threading\n"
            "_lock = threading.Lock()\n"
            "def f():\n"
            "    _lock.acquire()\n"
            "    _lock.release()\n",
        )
        assert [v.code for v in found] == ["AL011", "AL011"]
        assert "with _lock:" in found[0].message

    def test_with_block_ok(self, tmp_path):
        found = violations_for(
            tmp_path,
            "import threading\n"
            "_lock = threading.Lock()\n"
            "def f():\n"
            "    with _lock:\n"
            "        pass\n",
        )
        assert found == []

    def test_lock_like_receiver_flagged_without_binding(self, tmp_path):
        found = violations_for(
            tmp_path,
            "def f(queue_lock):\n"
            "    queue_lock.acquire()\n",
        )
        assert [v.code for v in found] == ["AL011"]

    def test_unguarded_serve_module_state_flagged(self, tmp_path):
        found = self.serve_violations_for(
            tmp_path,
            "pending = {}\n"
            "def handle(key):\n"
            "    pending[key] = 1\n",
        )
        codes = {v.code for v in found}
        assert codes == {"AL011"}
        assert any("share module state" in v.message for v in found)

    def test_guarded_serve_module_state_ok(self, tmp_path):
        found = self.serve_violations_for(
            tmp_path,
            "import threading\n"
            "_lock = threading.Lock()\n"
            "TABLE = {}\n"
            "def handle(key):\n"
            "    with _lock:\n"
            "        TABLE[key] = 1\n",
        )
        assert found == []

    def test_module_state_outside_serve_not_checked(self, tmp_path):
        found = violations_for(
            tmp_path,
            "pending = {}\n"
            "def handle(key):\n"
            "    pending[key] = 1\n",
        )
        assert found == []

    def test_pragma_disables_line(self, tmp_path):
        found = violations_for(
            tmp_path,
            "import threading\n"
            "_lock = threading.Lock()\n"
            "def f():\n"
            "    _lock.acquire()  # astlint: disable\n"
            "    _lock.release()  # astlint: disable\n",
        )
        assert found == []


class TestGate:
    def test_fixtures_directories_skipped(self, tmp_path):
        fixture_dir = tmp_path / "fixtures"
        fixture_dir.mkdir()
        (fixture_dir / "noise.py").write_text(
            "import numpy as np\nx = np.random.rand(3)\n"
        )
        assert astlint.iter_python_files([str(tmp_path)]) == []

    def test_cli_exit_codes(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(xs=[]):\n    return xs\n")
        proc = subprocess.run(
            [sys.executable, str(ASTLINT), str(bad)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "AL002" in proc.stdout

    def test_repo_is_clean(self):
        proc = subprocess.run(
            [sys.executable, str(ASTLINT), "src", "tests", "examples",
             "tools"],
            capture_output=True, text=True, cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout
