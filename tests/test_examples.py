"""Smoke tests: the example scripts run end to end.

Only the fast examples are exercised here; the heavier ones
(operator_playbook, synthesize_improved) are covered indirectly by the
bench/synthesis tests and run as part of the benchmark suite.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 600) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    return completed.stdout


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "operator_playbook.py",
        "new_algorithm.py",
        "synthesize_improved.py",
        "pcap_roundtrip.py",
        "device_classification.py",
        "online_gateway.py",
    } <= names


def test_pcap_roundtrip_example():
    out = run_example("pcap_roundtrip.py")
    assert "tables equal    : True" in out


def test_quickstart_example():
    out = run_example("quickstart.py")
    assert "precision" in out
    assert "per-operation profile" in out
    assert "Groupby" in out
