"""Tests for the deterministic fault plan and injector.

The whole point of the harness is that firing decisions are a pure
function of (seed, site, invocation index): the same plan breaks the
same calls every run.  These tests pin that contract down, plus the
spec parser, the exception-type mapping, and the process-wide
install/uninstall hooks.
"""

import zipfile

import pytest

from repro.faults import (
    EXCEPTIONS,
    FaultInjected,
    FaultInjector,
    FaultPlan,
    FaultRule,
    active,
    get_injector,
    install,
    maybe_inject,
    uninstall,
)
from repro.faults.plan import EXCEPTION_NAMES, SITES
from repro.obs import METRICS
from repro.obs import metrics as metric_names


class TestFaultRule:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule("teleport", rate=0.5)

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            FaultRule("train", rate=1.5)
        with pytest.raises(ValueError, match="rate"):
            FaultRule("train", rate=-0.1)

    def test_negative_fail_first_rejected(self):
        with pytest.raises(ValueError, match="fail_first"):
            FaultRule("train", fail_first=-1)

    def test_unknown_exception_rejected(self):
        with pytest.raises(ValueError, match="unknown exception"):
            FaultRule("train", rate=0.5, exception="segfault")

    def test_every_spec_name_maps_to_a_class(self):
        assert set(EXCEPTION_NAMES) == set(EXCEPTIONS)


class TestFaultPlan:
    def test_duplicate_site_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan(rules=(FaultRule("train", rate=0.1),
                             FaultRule("train", rate=0.2)))

    def test_no_rule_never_fires(self):
        plan = FaultPlan(seed=0, rules=(FaultRule("train", rate=1.0),))
        assert not any(plan.should_fire("predict", i) for i in range(50))

    def test_rate_one_always_fires(self):
        plan = FaultPlan(seed=0, rules=(FaultRule("train", rate=1.0),))
        assert all(plan.should_fire("train", i) for i in range(50))

    def test_rate_zero_never_fires(self):
        plan = FaultPlan(seed=0, rules=(FaultRule("train", rate=0.0),))
        assert not any(plan.should_fire("train", i) for i in range(50))

    def test_fail_first_covers_exactly_the_prefix(self):
        plan = FaultPlan(seed=0, rules=(FaultRule("train", fail_first=3),))
        assert [plan.should_fire("train", i) for i in range(5)] == [
            True, True, True, False, False,
        ]

    def test_same_seed_same_decisions(self):
        a = FaultPlan(seed=7, rules=(FaultRule("featurize", rate=0.4),))
        b = FaultPlan(seed=7, rules=(FaultRule("featurize", rate=0.4),))
        pattern = [a.should_fire("featurize", i) for i in range(200)]
        assert pattern == [b.should_fire("featurize", i) for i in range(200)]
        # and it's not degenerate: some fire, some don't
        assert any(pattern) and not all(pattern)

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, rules=(FaultRule("featurize", rate=0.5),))
        b = FaultPlan(seed=2, rules=(FaultRule("featurize", rate=0.5),))
        assert [a.should_fire("featurize", i) for i in range(200)] != [
            b.should_fire("featurize", i) for i in range(200)
        ]

    def test_rate_roughly_respected(self):
        plan = FaultPlan(seed=0, rules=(FaultRule("train", rate=0.25),))
        fired = sum(plan.should_fire("train", i) for i in range(2000))
        assert 350 < fired < 650  # ~500 expected

    def test_sites_are_independent_streams(self):
        plan = FaultPlan(
            seed=0,
            rules=(FaultRule("train", rate=0.5),
                   FaultRule("predict", rate=0.5)),
        )
        train = [plan.should_fire("train", i) for i in range(100)]
        predict = [plan.should_fire("predict", i) for i in range(100)]
        assert train != predict


class TestSpecParsing:
    def test_rate_clause(self):
        plan = FaultPlan.parse("featurize:0.25")
        rule = plan.rule_for("featurize")
        assert rule.rate == 0.25 and rule.fail_first == 0
        assert rule.exception == "fault"

    def test_fail_first_clause(self):
        rule = FaultPlan.parse("train:#2").rule_for("train")
        assert rule.fail_first == 2 and rule.rate == 0.0

    def test_exception_clause(self):
        rule = FaultPlan.parse("cache_disk_read:0.5:oserror").rule_for(
            "cache_disk_read"
        )
        assert rule.exception == "oserror"

    def test_multiple_clauses_compose(self):
        plan = FaultPlan.parse("featurize:0.25,train:#2:oserror", seed=9)
        assert plan.seed == 9
        assert len(plan.rules) == 2
        assert plan.rule_for("train").exception == "oserror"

    def test_describe_round_trips(self):
        plan = FaultPlan.parse("featurize:0.25,train:#2:oserror", seed=9)
        again = FaultPlan.parse(plan.describe().split(" (seed=")[0], seed=9)
        assert again == plan

    @pytest.mark.parametrize("spec", ["", "   ", "train", "train:1:2:3",
                                      "nowhere:0.5", "train:2.0"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    @pytest.mark.parametrize("site", ["ingest", "score_chunk",
                                      "checkpoint_write"])
    def test_serve_sites_parse(self, site):
        rule = FaultPlan.parse(f"{site}:0.3").rule_for(site)
        assert rule.rate == 0.3

    def test_unknown_site_lists_valid_sites(self):
        with pytest.raises(ValueError) as excinfo:
            FaultPlan.parse("serve_chunk:0.5")
        message = str(excinfo.value)
        # the error must teach: name the bad clause, list every valid
        # site, and nudge toward the close spelling
        assert "serve_chunk" in message
        for site in SITES:
            assert site in message
        assert "did you mean 'score_chunk'?" in message


class TestFaultInjector:
    def test_counts_invocations_per_site(self):
        injector = FaultInjector(FaultPlan())
        for _ in range(3):
            injector.check("train")
        injector.check("predict")
        assert injector.invocations("train") == 3
        assert injector.invocations("predict") == 1
        assert injector.invocations("featurize") == 0

    def test_firing_raises_and_records(self):
        plan = FaultPlan(rules=(FaultRule("train", fail_first=1),))
        injector = FaultInjector(plan)
        before = METRICS.counter(metric_names.FAULTS_INJECTED).value
        with pytest.raises(FaultInjected) as excinfo:
            injector.check("train", algorithm="A14")
        assert excinfo.value.site == "train"
        assert excinfo.value.index == 0
        injector.check("train")  # second invocation passes
        assert len(injector.fired) == 1
        assert injector.fired[0].detail == {"algorithm": "A14"}
        assert METRICS.counter(metric_names.FAULTS_INJECTED).value == before + 1

    @pytest.mark.parametrize("name,exc_cls", [
        ("oserror", OSError),
        ("valueerror", ValueError),
        ("runtimeerror", RuntimeError),
        ("badzipfile", zipfile.BadZipFile),
    ])
    def test_exception_name_selects_class(self, name, exc_cls):
        plan = FaultPlan(
            rules=(FaultRule("train", fail_first=1, exception=name),)
        )
        with pytest.raises(exc_cls, match="injected"):
            FaultInjector(plan).check("train")

    def test_reset_clears_counts_and_firings(self):
        plan = FaultPlan(rules=(FaultRule("train", fail_first=1),))
        injector = FaultInjector(plan)
        with pytest.raises(FaultInjected):
            injector.check("train")
        injector.reset()
        assert injector.invocations("train") == 0
        assert injector.fired == []
        with pytest.raises(FaultInjected):  # the prefix fires again
            injector.check("train")

    def test_two_injectors_same_plan_fire_identically(self):
        plan = FaultPlan(seed=3, rules=(FaultRule("predict", rate=0.5),))
        histories = []
        for _ in range(2):
            injector = FaultInjector(plan)
            fired = []
            for i in range(50):
                try:
                    injector.check("predict")
                    fired.append(False)
                except FaultInjected:
                    fired.append(True)
            histories.append(fired)
        assert histories[0] == histories[1]

    def test_fault_injected_survives_copy(self):
        import copy

        exc = FaultInjected("train", 4)
        clone = copy.deepcopy(exc)
        assert clone.site == "train" and clone.index == 4


class TestProcessHooks:
    def test_maybe_inject_is_noop_when_inactive(self):
        uninstall()
        assert get_injector() is None
        maybe_inject("train")  # must not raise

    def test_install_uninstall(self):
        injector = FaultInjector(
            FaultPlan(rules=(FaultRule("train", fail_first=1),))
        )
        install(injector)
        try:
            assert get_injector() is injector
            with pytest.raises(FaultInjected):
                maybe_inject("train")
        finally:
            uninstall()
        assert get_injector() is None
        maybe_inject("train")

    def test_active_context_manager(self):
        plan = FaultPlan(rules=(FaultRule("predict", fail_first=1),))
        with active(plan) as injector:
            assert get_injector() is injector
            with pytest.raises(FaultInjected):
                maybe_inject("predict")
        assert get_injector() is None

    def test_active_uninstalls_on_error(self):
        plan = FaultPlan(rules=(FaultRule("predict", fail_first=1),))
        with pytest.raises(RuntimeError, match="boom"):
            with active(plan):
                raise RuntimeError("boom")
        assert get_injector() is None

    def test_unknown_site_never_fires_but_is_counted(self):
        plan = FaultPlan(rules=(FaultRule("train", rate=1.0),))
        with active(plan) as injector:
            maybe_inject("featurize")
            assert injector.invocations("featurize") == 1
