"""Tests for the deterministic fault-injection harness."""
