"""Tests for the faithfulness rule and label propagation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.flows.granularity import Granularity, can_evaluate, propagate_labels

P = Granularity.PACKET
U = Granularity.UNI_FLOW
C = Granularity.CONNECTION
PAIR = Granularity.PAIR


class TestFaithfulnessRule:
    def test_same_granularity_always_allowed(self):
        for granularity in Granularity:
            assert can_evaluate(granularity, granularity)
            assert can_evaluate(granularity, granularity, strict=False)

    def test_packet_algorithm_on_flow_dataset_nonstrict(self):
        # Labels propagate down: coarse dataset can train fine algorithm.
        assert can_evaluate(P, C, strict=False)
        assert can_evaluate(P, U, strict=False)

    def test_connection_algorithm_on_packet_dataset_never(self):
        # The paper's canonical counterexample: would rewrite ground truth.
        assert not can_evaluate(C, P, strict=False)
        assert not can_evaluate(C, P, strict=True)

    def test_strict_mode_separates_families(self):
        # S5.1: packet algorithms on packet datasets only and vice versa.
        assert not can_evaluate(P, C, strict=True)
        assert not can_evaluate(U, P, strict=True)

    def test_uni_flow_algorithm_on_connection_dataset(self):
        # Within the flow-like family coarser labels still propagate down.
        assert can_evaluate(U, C, strict=True)
        assert not can_evaluate(C, U, strict=False)

    def test_pair_algorithm_needs_pair_labels_or_same(self):
        assert can_evaluate(PAIR, PAIR)
        assert not can_evaluate(PAIR, C, strict=True)

    @given(st.sampled_from(list(Granularity)), st.sampled_from(list(Granularity)))
    def test_strict_is_subset_of_nonstrict(self, algorithm, dataset):
        if can_evaluate(algorithm, dataset, strict=True):
            assert can_evaluate(algorithm, dataset, strict=False)


class TestLabelPropagation:
    def test_propagates_coarse_to_fine(self):
        flow_labels = np.array([0, 1, 0])
        membership = np.array([0, 0, 1, 1, 2])
        assert propagate_labels(flow_labels, membership).tolist() == [0, 0, 1, 1, 0]

    def test_unassigned_units_are_benign(self):
        flow_labels = np.array([1])
        membership = np.array([0, -1, 0])
        assert propagate_labels(flow_labels, membership).tolist() == [1, 0, 1]

    def test_empty(self):
        out = propagate_labels(np.array([], dtype=int), np.array([], dtype=int))
        assert len(out) == 0

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=20), st.data())
    def test_every_fine_unit_gets_its_flows_label(self, labels, data):
        flow_labels = np.array(labels)
        membership = np.array(
            data.draw(
                st.lists(
                    st.integers(0, len(labels) - 1), min_size=1, max_size=50
                )
            )
        )
        out = propagate_labels(flow_labels, membership)
        assert np.array_equal(out, flow_labels[membership])
