"""Property-based invariants of flow assembly over random traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows import (
    Granularity,
    assemble_connections,
    assemble_pairs,
    assemble_unidirectional,
)
from repro.traffic.builder import TraceBuilder


@st.composite
def random_traces(draw):
    """Small random TCP/UDP traces with a handful of hosts and ports."""
    n = draw(st.integers(1, 60))
    builder = TraceBuilder()
    for _ in range(n):
        ts = draw(st.floats(0.0, 100.0))
        src = draw(st.integers(1, 4))
        dst = draw(st.integers(1, 4))
        sport = draw(st.sampled_from([1000, 2000, 3000]))
        dport = draw(st.sampled_from([80, 443]))
        label = draw(st.integers(0, 1))
        if draw(st.booleans()):
            builder.add_tcp(ts, src, dst, sport, dport, 10,
                            attack="x" if label else "")
        else:
            builder.add_udp(ts, src, dst, sport, dport, 10,
                            attack="x" if label else "")
    return builder.build()


ASSEMBLERS = [assemble_unidirectional, assemble_connections, assemble_pairs]


@pytest.mark.parametrize("assemble", ASSEMBLERS,
                         ids=lambda a: a.__name__)
class TestAssemblyInvariants:
    @settings(max_examples=25, deadline=None)
    @given(table=random_traces())
    def test_partition(self, assemble, table):
        """Every packet lands in exactly one flow."""
        flows = assemble(table)
        assert flows.counts.sum() == len(table)
        seen = np.sort(flows.order)
        assert np.array_equal(seen, np.arange(len(table)))

    @settings(max_examples=25, deadline=None)
    @given(table=random_traces())
    def test_time_sorted_within_flows(self, assemble, table):
        flows = assemble(table)
        for i in range(len(flows)):
            ts = table.ts[flows.packet_indices(i)]
            assert np.all(np.diff(ts) >= 0)

    @settings(max_examples=25, deadline=None)
    @given(table=random_traces())
    def test_label_is_any_malicious(self, assemble, table):
        flows = assemble(table)
        for i in range(len(flows)):
            members = table.label[flows.packet_indices(i)]
            assert flows.labels[i] == int(members.max())

    @settings(max_examples=25, deadline=None)
    @given(table=random_traces())
    def test_malicious_flow_has_attack_id(self, assemble, table):
        flows = assemble(table)
        malicious = flows.labels == 1
        assert (flows.attack_ids[malicious] >= 0).all()
        assert (flows.attack_ids[~malicious] == -1).all()


@settings(max_examples=25, deadline=None)
@given(table=random_traces())
def test_connection_merges_at_most_as_many_flows_as_unidirectional(table):
    connections = assemble_connections(table)
    unidirectional = assemble_unidirectional(table)
    assert len(connections) <= len(unidirectional)


@settings(max_examples=25, deadline=None)
@given(table=random_traces())
def test_connection_forward_packets_nonempty(table):
    connections = assemble_connections(table)
    for i in range(len(connections)):
        positions = connections.packet_positions(i)
        # the first packet of a connection defines "forward"
        assert connections.forward[positions[0]]
