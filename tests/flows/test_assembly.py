"""Tests for flow/connection/pair assembly."""

import numpy as np
import pytest

from repro.flows import (
    Granularity,
    assemble_connections,
    assemble_flows,
    assemble_pairs,
    assemble_unidirectional,
)
from repro.net.headers import (
    EthernetHeader,
    IPv4Header,
    TCPHeader,
    UDPHeader,
    IPPROTO_TCP,
    IPPROTO_UDP,
)
from repro.net.packet import Packet
from repro.net.table import PacketTable


def tcp_packet(ts, src_ip, dst_ip, sport, dport, label=0, attack=""):
    return Packet(
        timestamp=ts,
        layers=[
            EthernetHeader(src_mac=1, dst_mac=2),
            IPv4Header(src_ip=src_ip, dst_ip=dst_ip, protocol=IPPROTO_TCP, total_length=40),
            TCPHeader(src_port=sport, dst_port=dport),
        ],
        label=label,
        attack=attack,
    )


@pytest.fixture
def two_way_session():
    """A TCP session: client 10.0.0.1:4000 <-> server 10.0.0.2:80."""
    client, server = 0x0A000001, 0x0A000002
    packets = [
        tcp_packet(0.0, client, server, 4000, 80),
        tcp_packet(0.1, server, client, 80, 4000),
        tcp_packet(0.2, client, server, 4000, 80),
        tcp_packet(0.3, server, client, 80, 4000),
        # a second, unrelated session
        tcp_packet(1.0, client, server, 4001, 80, label=1, attack="scan"),
        tcp_packet(1.1, server, client, 80, 4001, label=1, attack="scan"),
    ]
    return PacketTable.from_packets(packets)


class TestUnidirectional:
    def test_splits_directions(self, two_way_session):
        flows = assemble_unidirectional(two_way_session)
        # 2 directions x 2 sessions = 4 unidirectional flows
        assert len(flows) == 4
        assert flows.granularity == Granularity.UNI_FLOW

    def test_counts_and_order(self, two_way_session):
        flows = assemble_unidirectional(two_way_session)
        assert sorted(flows.counts.tolist()) == [1, 1, 2, 2]
        assert flows.counts.sum() == len(two_way_session)

    def test_label_any_malicious(self, two_way_session):
        flows = assemble_unidirectional(two_way_session)
        assert flows.n_malicious == 2
        malicious = np.flatnonzero(flows.labels == 1)
        for i in malicious:
            name = flows.packets.attacks[flows.attack_ids[i]]
            assert name == "scan"

    def test_timeout_splits_idle_flows(self):
        packets = [
            tcp_packet(t, 0x0A000001, 0x0A000002, 4000, 80)
            for t in (0.0, 1.0, 5000.0, 5001.0)
        ]
        table = PacketTable.from_packets(packets)
        flows = assemble_unidirectional(table, timeout=3600.0)
        assert len(flows) == 2
        assert flows.counts.tolist() == [2, 2]

    def test_empty_table(self):
        flows = assemble_unidirectional(PacketTable.empty())
        assert len(flows) == 0

    def test_key_columns_match_first_packet(self, two_way_session):
        flows = assemble_unidirectional(two_way_session)
        for i in range(len(flows)):
            first = flows.packet_indices(i)[0]
            assert flows.key_columns["src_ip"][i] == two_way_session.src_ip[first]
            assert flows.key_columns["src_port"][i] == two_way_session.src_port[first]

    def test_packets_within_flow_time_sorted(self, two_way_session):
        flows = assemble_unidirectional(two_way_session)
        for i in range(len(flows)):
            ts = two_way_session.ts[flows.packet_indices(i)]
            assert np.all(np.diff(ts) >= 0)


class TestConnections:
    def test_merges_directions(self, two_way_session):
        connections = assemble_connections(two_way_session)
        assert len(connections) == 2
        assert connections.granularity == Granularity.CONNECTION
        assert sorted(connections.counts.tolist()) == [2, 4]

    def test_initiator_is_first_sender(self, two_way_session):
        connections = assemble_connections(two_way_session)
        for i in range(len(connections)):
            assert connections.key_columns["src_ip"][i] == 0x0A000001
            assert connections.key_columns["dst_port"][i] == 80

    def test_forward_direction_flags(self, two_way_session):
        connections = assemble_connections(two_way_session)
        for i in range(len(connections)):
            positions = connections.packet_positions(i)
            indices = connections.packet_indices(i)
            is_client = two_way_session.src_ip[indices] == 0x0A000001
            assert np.array_equal(connections.forward[positions], is_client)

    def test_protocols_not_merged(self):
        packets = [
            tcp_packet(0.0, 1, 2, 53, 53),
            Packet(
                timestamp=0.1,
                layers=[
                    EthernetHeader(src_mac=1, dst_mac=2),
                    IPv4Header(src_ip=1, dst_ip=2, protocol=IPPROTO_UDP, total_length=28),
                    UDPHeader(src_port=53, dst_port=53),
                ],
            ),
        ]
        connections = assemble_connections(PacketTable.from_packets(packets))
        assert len(connections) == 2

    def test_durations_and_bytes(self, two_way_session):
        connections = assemble_connections(two_way_session)
        long_one = int(np.argmax(connections.counts))
        assert connections.durations[long_one] == pytest.approx(0.3)
        assert connections.total_bytes[long_one] == 4 * 54


class TestPairs:
    def test_pair_grouping_is_directional(self, two_way_session):
        pairs = assemble_pairs(two_way_session)
        # (client -> server) and (server -> client) are separate pairs
        assert len(pairs) == 2
        assert pairs.granularity == Granularity.PAIR

    def test_windowing_slices_pairs(self):
        packets = [
            tcp_packet(t, 0x0A000001, 0x0A000002, 4000, 80) for t in (0.0, 5.0, 15.0)
        ]
        pairs = assemble_pairs(PacketTable.from_packets(packets), window=10.0)
        assert len(pairs) == 2
        assert pairs.counts.tolist() == [2, 1]

    def test_invalid_window(self, two_way_session):
        with pytest.raises(ValueError):
            assemble_pairs(two_way_session, window=0.0)


class TestBoundsValidation:
    """Every assemble entry point rejects non-positive windows/timeouts."""

    @pytest.mark.parametrize("window", [0.0, -10.0])
    def test_pairs_rejects_bad_window(self, two_way_session, window):
        with pytest.raises(ValueError, match="window must be positive"):
            assemble_pairs(two_way_session, window=window)

    @pytest.mark.parametrize("window", [0.0, -10.0])
    def test_dispatch_rejects_bad_window(self, two_way_session, window):
        # the dispatch layer validates before routing, for every
        # granularity -- not just the PAIR branch that uses the window
        for granularity in (
            Granularity.UNI_FLOW,
            Granularity.CONNECTION,
            Granularity.PAIR,
        ):
            with pytest.raises(ValueError, match="window must be positive"):
                assemble_flows(two_way_session, granularity, window=window)

    @pytest.mark.parametrize("timeout", [0.0, -1.0])
    def test_unidirectional_rejects_bad_timeout(
        self, two_way_session, timeout
    ):
        with pytest.raises(ValueError, match="timeout must be positive"):
            assemble_unidirectional(two_way_session, timeout=timeout)

    @pytest.mark.parametrize("timeout", [0.0, -1.0])
    def test_connections_rejects_bad_timeout(self, two_way_session, timeout):
        with pytest.raises(ValueError, match="timeout must be positive"):
            assemble_connections(two_way_session, timeout=timeout)

    @pytest.mark.parametrize("timeout", [0.0, -1.0])
    def test_pairs_rejects_bad_timeout(self, two_way_session, timeout):
        with pytest.raises(ValueError, match="timeout must be positive"):
            assemble_pairs(two_way_session, timeout=timeout)

    @pytest.mark.parametrize("timeout", [0.0, -1.0])
    def test_dispatch_rejects_bad_timeout(self, two_way_session, timeout):
        with pytest.raises(ValueError, match="timeout must be positive"):
            assemble_flows(
                two_way_session, Granularity.UNI_FLOW, timeout=timeout
            )

    def test_positive_bounds_still_pass(self, two_way_session):
        flows = assemble_flows(
            two_way_session, Granularity.PAIR, timeout=60.0, window=10.0
        )
        assert flows.granularity == Granularity.PAIR


class TestDispatchAndSelect:
    def test_dispatch(self, two_way_session):
        for granularity in (
            Granularity.UNI_FLOW,
            Granularity.CONNECTION,
            Granularity.PAIR,
        ):
            flows = assemble_flows(two_way_session, granularity)
            assert flows.granularity == granularity

    def test_packet_dispatch_rejected(self, two_way_session):
        with pytest.raises(ValueError):
            assemble_flows(two_way_session, Granularity.PACKET)

    def test_select_repacks_ranges(self, two_way_session):
        flows = assemble_unidirectional(two_way_session)
        malicious = flows.select(flows.labels == 1)
        assert len(malicious) == 2
        assert malicious.counts.sum() == 2
        for i in range(len(malicious)):
            indices = malicious.packet_indices(i)
            assert (two_way_session.label[indices] == 1).all()

    def test_select_with_index_array(self, two_way_session):
        flows = assemble_unidirectional(two_way_session)
        subset = flows.select(np.array([0, 2]))
        assert len(subset) == 2

    def test_reduce_unknown_raises(self, two_way_session):
        flows = assemble_unidirectional(two_way_session)
        with pytest.raises(ValueError):
            flows.reduce(flows.segment("ts"), how="median")

    def test_reduce_misaligned_raises(self, two_way_session):
        flows = assemble_unidirectional(two_way_session)
        with pytest.raises(ValueError):
            flows.reduce(np.zeros(3), how="sum")

    def test_reduce_mean_matches_manual(self, two_way_session):
        flows = assemble_unidirectional(two_way_session)
        lengths = flows.segment("length").astype(float)
        means = flows.reduce(lengths, "mean")
        for i in range(len(flows)):
            manual = two_way_session.length[flows.packet_indices(i)].mean()
            assert means[i] == pytest.approx(manual)

    def test_summary(self, two_way_session):
        summary = assemble_connections(two_way_session).summary()
        assert summary["flows"] == 2
        assert summary["malicious"] == 1
        assert summary["attacks"] == ["scan"]
