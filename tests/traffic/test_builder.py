"""Tests for the trace builder."""

import numpy as np
import pytest

from repro.net.headers import TCPFlags
from repro.net.packet import LinkType
from repro.net.table import PACKET_COLUMNS
from repro.traffic.builder import TraceBuilder


class TestRowHelpers:
    def test_tcp_row(self):
        builder = TraceBuilder()
        builder.add_tcp(1.0, 10, 20, 1000, 80, payload_len=100,
                        flags=int(TCPFlags.SYN), ttl=55)
        table = builder.build()
        assert len(table) == 1
        assert table.src_ip[0] == 10
        assert table.dst_port[0] == 80
        assert table.proto[0] == 6
        assert table.length[0] == 14 + 20 + 20 + 100
        assert table.ttl[0] == 55
        assert table.tcp_flags[0] == int(TCPFlags.SYN)

    def test_udp_row(self):
        builder = TraceBuilder()
        builder.add_udp(0.0, 1, 2, 5353, 53, payload_len=30)
        table = builder.build()
        assert table.proto[0] == 17
        assert table.length[0] == 14 + 20 + 8 + 30

    def test_icmp_row(self):
        builder = TraceBuilder()
        builder.add_icmp(0.0, 1, 2, payload_len=56)
        table = builder.build()
        assert table.proto[0] == 1
        assert table.length[0] == 14 + 20 + 8 + 56

    def test_arp_row_is_non_ip(self):
        builder = TraceBuilder()
        builder.add_arp(0.0, 0xA, 0xB, sender_ip=1, target_ip=2)
        table = builder.build()
        assert table.l3[0] == 0
        assert table.src_mac[0] == 0xA

    def test_dot11_row(self):
        builder = TraceBuilder()
        builder.add_dot11(0.0, 0, 12, 0xA, 0xB, payload_len=2)
        table = builder.build()
        assert table.l2[0] == int(LinkType.IEEE802_11)
        assert table.wlan_subtype[0] == 12
        assert table.length[0] == 24 + 2

    def test_attack_labelling(self):
        builder = TraceBuilder()
        builder.add_tcp(0.0, 1, 2, 3, 4)
        builder.add_tcp(1.0, 1, 2, 3, 4, attack="scan")
        builder.add_tcp(2.0, 1, 2, 3, 4, attack="flood")
        table = builder.build()
        assert table.label.tolist() == [0, 1, 1]
        assert table.attacks == ["scan", "flood"]
        assert table.attack_id.tolist() == [-1, 0, 1]

    def test_attack_ids_deduplicated(self):
        builder = TraceBuilder()
        for i in range(5):
            builder.add_tcp(float(i), 1, 2, 3, 4, attack="scan")
        table = builder.build()
        assert table.attacks == ["scan"]
        assert (table.attack_id == 0).all()


class TestCompoundHelpers:
    def test_tcp_session_structure(self):
        builder = TraceBuilder()
        rng = np.random.default_rng(0)
        end = builder.add_tcp_session(
            0.0, 1, 2, 1000, 80,
            request_sizes=[100, 200], response_sizes=[300],
            rng=rng,
        )
        table = builder.build()
        # SYN, SYN-ACK, ACK, 2 requests, 1 response, FIN, FIN = 8 packets
        assert len(table) == 8
        flags = table.tcp_flags
        assert flags[0] == int(TCPFlags.SYN)
        assert flags[1] == int(TCPFlags.SYN | TCPFlags.ACK)
        fins = (flags & int(TCPFlags.FIN)) > 0
        assert fins.sum() == 2
        assert end >= table.ts.max()

    def test_session_timestamps_monotone(self):
        builder = TraceBuilder()
        rng = np.random.default_rng(1)
        builder.add_tcp_session(
            5.0, 1, 2, 1000, 443,
            request_sizes=[10] * 5, response_sizes=[20] * 5, rng=rng,
        )
        table = builder.build(sort=False)
        assert np.all(np.diff(table.ts) > 0)

    def test_udp_exchange(self):
        builder = TraceBuilder()
        rng = np.random.default_rng(2)
        builder.add_udp_exchange(0.0, 1, 2, 5000, 53, 40, 120, rng)
        table = builder.build()
        assert len(table) == 2
        assert table.src_ip[0] == 1 and table.src_ip[1] == 2
        assert table.payload_len.tolist() == [40, 120]

    def test_build_sorts_by_time(self):
        builder = TraceBuilder()
        builder.add_tcp(5.0, 1, 2, 3, 4)
        builder.add_tcp(1.0, 1, 2, 3, 4)
        table = builder.build()
        assert table.ts.tolist() == [1.0, 5.0]

    def test_all_columns_populated(self):
        builder = TraceBuilder()
        builder.add_tcp(0.0, 1, 2, 3, 4)
        table = builder.build()
        for name in PACKET_COLUMNS:
            assert len(table.columns[name]) == 1
