"""Tests for device models, attack generators and network scenarios."""

import numpy as np
import pytest

from repro.net.headers import Dot11Header, TCPFlags
from repro.traffic import (
    ATTACK_GENERATORS,
    DEVICE_MODELS,
    AttackSpec,
    NetworkScenario,
    TraceBuilder,
)
from repro.traffic.attacks import AttackContext
from repro.traffic.devices import Device, Servers


@pytest.fixture
def servers():
    return Servers(dns=0x08080808, ntp=0x08080404, cloud=[0x01020304],
                   web=[0x05060708])


@pytest.fixture
def context_factory():
    def make(duration=30.0, intensity=1.0, seed=0):
        return AttackContext(
            builder=TraceBuilder(),
            rng=np.random.default_rng(seed),
            t0=0.0,
            t1=duration,
            attacker_ips=[0xC0000201],
            victim_ips=[0xC0A80110],
            intensity=intensity,
            gateway_ip=0xC0A80101,
        )

    return make


class TestDeviceModels:
    @pytest.mark.parametrize("model_name", sorted(DEVICE_MODELS))
    def test_generates_benign_traffic(self, model_name, servers):
        builder = TraceBuilder()
        device = Device(ip=0xC0A80105, mac=0xAA, model=model_name)
        model = DEVICE_MODELS[model_name]
        model.generate(builder, device, servers, np.random.default_rng(1),
                       0.0, 120.0, 1.0)
        table = builder.build()
        assert len(table) > 0
        assert table.n_malicious == 0
        # every packet involves the device
        involved = (table.src_ip == device.ip) | (table.dst_ip == device.ip)
        assert involved.all()

    def test_camera_is_chattier_than_plug(self, servers):
        counts = {}
        for model_name in ("camera", "smart_plug"):
            builder = TraceBuilder()
            device = Device(ip=1, mac=2, model=model_name)
            DEVICE_MODELS[model_name].generate(
                builder, device, servers, np.random.default_rng(0),
                0.0, 60.0, 1.0,
            )
            counts[model_name] = len(builder.build())
        assert counts["camera"] > counts["smart_plug"] * 10

    def test_intensity_scales_traffic(self, servers):
        counts = []
        for intensity in (0.5, 2.0):
            builder = TraceBuilder()
            device = Device(ip=1, mac=2, model="smart_hub")
            DEVICE_MODELS["smart_hub"].generate(
                builder, device, servers, np.random.default_rng(0),
                0.0, 120.0, intensity,
            )
            counts.append(len(builder.build()))
        assert counts[1] > counts[0]


class TestAttackGenerators:
    @pytest.mark.parametrize("attack_name", sorted(ATTACK_GENERATORS))
    def test_emits_labelled_traffic_in_window(self, attack_name, context_factory):
        ctx = context_factory()
        ATTACK_GENERATORS[attack_name](ctx)
        table = ctx.builder.build()
        assert len(table) > 0, f"{attack_name} produced nothing"
        assert (table.label == 1).all()
        assert table.attacks == [attack_name]
        assert table.ts.min() >= ctx.t0 - 1e-9

    def test_syn_flood_is_mostly_syns(self, context_factory):
        ctx = context_factory()
        ATTACK_GENERATORS["dos_syn_flood"](ctx)
        table = ctx.builder.build()
        syn_frac = ((table.tcp_flags == int(TCPFlags.SYN)).mean())
        assert syn_frac > 0.7

    def test_port_scan_covers_many_ports(self, context_factory):
        ctx = context_factory(intensity=1.0)
        ATTACK_GENERATORS["port_scan"](ctx)
        table = ctx.builder.build()
        scanned = table.dst_port[table.src_ip == ctx.attacker_ips[0]]
        assert len(np.unique(scanned)) > 500

    def test_wifi_attacks_have_no_ip(self, context_factory):
        for name in ("wifi_deauth", "wifi_eviltwin"):
            ctx = context_factory()
            ATTACK_GENERATORS[name](ctx)
            table = ctx.builder.build()
            assert (table.l3 == 0).all()
            assert (table.l2 == 105).all()

    def test_deauth_subtype(self, context_factory):
        ctx = context_factory()
        ATTACK_GENERATORS["wifi_deauth"](ctx)
        table = ctx.builder.build()
        assert (table.wlan_subtype == Dot11Header.SUBTYPE_DEAUTH).all()

    def test_arp_mitm_targets_gateway_binding(self, context_factory):
        ctx = context_factory()
        ATTACK_GENERATORS["arp_mitm"](ctx)
        table = ctx.builder.build()
        assert (table.l3 == 0).all()
        assert (table.src_mac == ctx.attacker_mac).all()

    def test_intensity_scales_rate(self, context_factory):
        low = context_factory(intensity=0.2)
        high = context_factory(intensity=2.0)
        ATTACK_GENERATORS["dos_udp_flood"](low)
        ATTACK_GENERATORS["dos_udp_flood"](high)
        assert len(high.builder.build()) > 3 * len(low.builder.build())

    def test_attack_spec_validation(self):
        with pytest.raises(ValueError):
            AttackSpec("no_such_attack")
        with pytest.raises(ValueError):
            AttackSpec("port_scan", 0.8, 0.2)
        with pytest.raises(ValueError):
            AttackSpec("port_scan", -0.1, 0.5)


class TestNetworkScenario:
    def make(self, seed=0, **overrides):
        base = dict(
            name="test",
            device_counts={"thermostat": 1, "workstation": 1},
            duration=60.0,
            seed=seed,
            attacks=(AttackSpec("port_scan", 0.3, 0.6, intensity=0.1),),
        )
        base.update(overrides)
        return NetworkScenario(**base)

    def test_deterministic_in_seed(self):
        first = self.make(seed=5).generate()
        second = self.make(seed=5).generate()
        assert first.equals(second)

    def test_different_seeds_differ(self):
        first = self.make(seed=5).generate()
        second = self.make(seed=6).generate()
        assert not first.equals(second)

    def test_mixed_labels(self):
        table = self.make().generate()
        assert 0 < table.n_malicious < len(table)

    def test_attack_window_respected(self):
        table = self.make().generate()
        malicious_ts = table.ts[table.label == 1]
        assert malicious_ts.min() >= 60.0 * 0.3 - 1.0
        assert malicious_ts.max() <= 60.0 * 0.6 + 1.0

    def test_unknown_device_model_rejected(self):
        with pytest.raises(ValueError):
            NetworkScenario(name="x", device_counts={"toaster": 1})

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            NetworkScenario(
                name="x", device_counts={"camera": 1}, duration=0.0
            )

    def test_wifi_mode_produces_dot11_only(self):
        scenario = NetworkScenario(
            name="wifi", device_counts={"camera": 2}, duration=30.0,
            wifi=True, seed=1,
            attacks=(AttackSpec("wifi_deauth", 0.3, 0.6),),
        )
        table = scenario.generate()
        assert (table.l2 == 105).all()
        assert (table.l3 == 0).all()
        assert table.n_malicious > 0

    def test_devices_in_subnet(self):
        from repro.net.addresses import in_prefix

        scenario = self.make(subnet="10.9.8.0/24")
        table = scenario.generate()
        benign_sources = np.unique(table.src_ip[table.label == 0])
        local = [ip for ip in benign_sources if in_prefix(int(ip), "10.9.8.0/24")]
        assert local  # the devices live inside the requested subnet
