"""Tests for scalers, PCA and feature selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.base import NotFittedError
from repro.ml.feature_selection import CorrelatedFeatureRemover, VarianceThreshold
from repro.ml.preprocessing import MinMaxScaler, PCA, StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(500, 4))
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_maps_to_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled[:, 0], 0.0)

    def test_inverse_round_trip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform([[1.0]])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            StandardScaler().fit([[np.nan, 1.0]])

    @settings(max_examples=25)
    @given(
        arrays(
            np.float64,
            (20, 3),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    def test_transform_is_affine(self, X):
        scaler = StandardScaler().fit(X)
        a = scaler.transform(X[:5])
        b = scaler.transform(X[5:10])
        combined = scaler.transform(np.vstack([X[:5], X[5:10]]))
        assert np.allclose(combined, np.vstack([a, b]))


class TestMinMaxScaler:
    def test_range(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(-10, 10, size=(100, 3))
        scaled = MinMaxScaler().fit_transform(X)
        assert scaled.min() >= 0.0 and scaled.max() <= 1.0
        assert scaled.min(axis=0) == pytest.approx(np.zeros(3))
        assert scaled.max(axis=0) == pytest.approx(np.ones(3))

    def test_out_of_range_without_clip(self):
        scaler = MinMaxScaler().fit([[0.0], [1.0]])
        assert scaler.transform([[2.0]])[0, 0] == 2.0

    def test_out_of_range_with_clip(self):
        scaler = MinMaxScaler(clip=True).fit([[0.0], [1.0]])
        assert scaler.transform([[2.0]])[0, 0] == 1.0
        assert scaler.transform([[-1.0]])[0, 0] == 0.0

    def test_constant_feature(self):
        scaled = MinMaxScaler().fit_transform([[3.0], [3.0], [3.0]])
        assert np.allclose(scaled, 0.0)


class TestPCA:
    def test_recovers_dominant_direction(self):
        rng = np.random.default_rng(3)
        t = rng.normal(size=500)
        X = np.column_stack([t, 2 * t + rng.normal(scale=0.01, size=500)])
        pca = PCA(n_components=1).fit(X)
        direction = pca.components_[0] / np.linalg.norm(pca.components_[0])
        expected = np.array([1.0, 2.0]) / np.sqrt(5.0)
        assert abs(abs(direction @ expected) - 1.0) < 1e-3

    def test_explained_variance_sums_below_one(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(100, 5))
        pca = PCA(n_components=3).fit(X)
        assert 0.0 < pca.explained_variance_ratio_.sum() <= 1.0 + 1e-12

    def test_full_rank_reconstruction(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(40, 4))
        pca = PCA(n_components=4).fit(X)
        assert np.allclose(pca.inverse_transform(pca.transform(X)), X, atol=1e-8)

    def test_components_clamped_to_rank(self):
        X = np.random.default_rng(6).normal(size=(10, 3))
        pca = PCA(n_components=99).fit(X)
        assert pca.components_.shape[0] == 3

    def test_transform_shape(self):
        X = np.random.default_rng(7).normal(size=(30, 6))
        assert PCA(n_components=2).fit_transform(X).shape == (30, 2)


class TestVarianceThreshold:
    def test_drops_constant(self):
        X = np.column_stack([np.ones(20), np.arange(20.0)])
        out = VarianceThreshold().fit_transform(X)
        assert out.shape == (20, 1)
        assert np.allclose(out[:, 0], np.arange(20.0))

    def test_never_drops_everything(self):
        X = np.ones((10, 3))
        out = VarianceThreshold().fit_transform(X)
        assert out.shape == (10, 3)

    def test_threshold_value(self):
        rng = np.random.default_rng(8)
        X = np.column_stack([rng.normal(scale=0.01, size=100), rng.normal(scale=10, size=100)])
        out = VarianceThreshold(threshold=1.0).fit_transform(X)
        assert out.shape[1] == 1


class TestCorrelatedFeatureRemover:
    def test_drops_duplicate_feature(self):
        rng = np.random.default_rng(9)
        base = rng.normal(size=200)
        X = np.column_stack([base, base * 2.0 + 1e-9, rng.normal(size=200)])
        remover = CorrelatedFeatureRemover(threshold=0.95).fit(X)
        assert remover.mask_.tolist() == [True, False, True]

    def test_keeps_uncorrelated(self):
        rng = np.random.default_rng(10)
        X = rng.normal(size=(300, 4))
        remover = CorrelatedFeatureRemover(threshold=0.95).fit(X)
        assert remover.mask_.all()

    def test_drops_constant_features(self):
        rng = np.random.default_rng(11)
        X = np.column_stack([rng.normal(size=50), np.full(50, 7.0)])
        remover = CorrelatedFeatureRemover().fit(X)
        assert remover.mask_.tolist() == [True, False]

    def test_all_constant_keeps_one(self):
        X = np.ones((10, 3))
        remover = CorrelatedFeatureRemover().fit(X)
        assert remover.mask_.sum() == 1

    def test_anticorrelation_also_dropped(self):
        rng = np.random.default_rng(12)
        base = rng.normal(size=200)
        X = np.column_stack([base, -base])
        remover = CorrelatedFeatureRemover(threshold=0.9).fit(X)
        assert remover.mask_.tolist() == [True, False]
