"""Tests for the transform-stack model wrapper and estimator basics."""

import numpy as np
import pytest

from repro.ml import (
    CorrelatedFeatureRemover,
    DecisionTreeClassifier,
    GMMAnomalyDetector,
    GaussianNB,
    StandardScaler,
    accuracy_score,
)
from repro.ml.base import BaseEstimator, NotFittedError, check_array, check_X_y, clone
from repro.ml.pipeline_model import TransformedClassifier


class TestTransformedClassifier:
    def test_fits_transforms_on_train_only(self, blobs):
        X, y = blobs
        model = TransformedClassifier(
            [StandardScaler()], DecisionTreeClassifier(max_depth=4)
        )
        model.fit(X[:200], y[:200])
        scaler = model.transforms_[0]
        # the fitted mean is the training mean, not the full-data mean
        assert np.allclose(scaler.mean_, X[:200].mean(axis=0))

    def test_prediction_quality_preserved(self, blobs):
        X, y = blobs
        model = TransformedClassifier(
            [StandardScaler(), CorrelatedFeatureRemover()],
            DecisionTreeClassifier(max_depth=6),
        )
        model.fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.95

    def test_unsupervised_fit(self, blobs):
        X, _ = blobs
        benign = X[:200]
        model = TransformedClassifier(
            [StandardScaler()], GMMAnomalyDetector(n_components=2)
        )
        model.fit(benign)  # y=None path
        scores = model.score_samples(X)
        assert scores[200:].mean() > scores[:200].mean()

    def test_predict_proba_passthrough(self, blobs):
        X, y = blobs
        model = TransformedClassifier([StandardScaler()], GaussianNB())
        model.fit(X, y)
        proba = model.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_predict_proba_missing_raises(self, blobs):
        X, y = blobs
        from repro.ml import LinearSVC

        model = TransformedClassifier([], LinearSVC(n_epochs=5))
        model.fit(X, y)
        with pytest.raises(AttributeError):
            model.predict_proba(X)

    def test_unfitted_raises(self, blobs):
        X, _ = blobs
        model = TransformedClassifier([], GaussianNB())
        with pytest.raises(NotFittedError):
            model.predict(X)

    def test_clone_deep_copies_transforms(self):
        model = TransformedClassifier([StandardScaler()], GaussianNB())
        duplicate = clone(model)
        assert duplicate.transforms is not model.transforms
        assert duplicate.transforms[0] is not model.transforms[0]

    def test_classes_exposed(self, blobs):
        X, y = blobs
        model = TransformedClassifier([], GaussianNB()).fit(X, y)
        assert set(model.classes_) == {0, 1}


class TestBaseEstimator:
    def test_get_params_reflects_init(self):
        tree = DecisionTreeClassifier(max_depth=5, criterion="entropy")
        params = tree.get_params()
        assert params["max_depth"] == 5
        assert params["criterion"] == "entropy"

    def test_set_params_roundtrip(self):
        tree = DecisionTreeClassifier()
        tree.set_params(max_depth=9)
        assert tree.max_depth == 9

    def test_set_unknown_param_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().set_params(depth=3)

    def test_repr_contains_params(self):
        assert "max_depth=7" in repr(DecisionTreeClassifier(max_depth=7))

    def test_check_array_rejects_empty(self):
        with pytest.raises(ValueError):
            check_array(np.empty((0, 3)))

    def test_check_array_allows_empty_when_asked(self):
        out = check_array(np.empty((0, 3)), allow_empty=True)
        assert out.shape == (0, 3)

    def test_check_array_promotes_1d(self):
        assert check_array([1.0, 2.0]).shape == (2, 1)

    def test_check_array_rejects_3d(self):
        with pytest.raises(ValueError):
            check_array(np.zeros((2, 2, 2)))

    def test_check_X_y_length_mismatch(self):
        with pytest.raises(ValueError):
            check_X_y(np.zeros((3, 2)), [0, 1])

    def test_check_X_y_rejects_2d_labels(self):
        with pytest.raises(ValueError):
            check_X_y(np.zeros((3, 2)), np.zeros((3, 1)))
