"""Tests for operating-point calibration."""

import numpy as np
import pytest

from repro.ml import precision_score, recall_score
from repro.ml.calibration import (
    apply_threshold,
    recalibrate,
    threshold_for_best_f1,
    threshold_for_fpr,
    threshold_for_precision,
)


@pytest.fixture
def scored():
    """Scores with known structure: positives score higher with overlap."""
    rng = np.random.default_rng(17)
    negatives = rng.normal(0.0, 1.0, size=600)
    positives = rng.normal(2.0, 1.0, size=200)
    scores = np.concatenate([negatives, positives])
    labels = np.array([0] * 600 + [1] * 200)
    return labels, scores


class TestPrecisionFloor:
    def test_meets_floor(self, scored):
        labels, scores = scored
        threshold = threshold_for_precision(labels, scores, min_precision=0.9)
        predictions = apply_threshold(scores, threshold)
        assert precision_score(labels, predictions) >= 0.88

    def test_lower_floor_gives_more_recall(self, scored):
        labels, scores = scored
        strict = threshold_for_precision(labels, scores, min_precision=0.95)
        loose = threshold_for_precision(labels, scores, min_precision=0.6)
        recall_strict = recall_score(labels, apply_threshold(scores, strict))
        recall_loose = recall_score(labels, apply_threshold(scores, loose))
        assert recall_loose >= recall_strict
        assert loose <= strict

    def test_unreachable_floor_returns_none(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.9, 0.1, 0.8, 0.2])  # inverted: floor unreachable
        assert threshold_for_precision(labels, scores, min_precision=0.99) is None

    def test_invalid_floor(self, scored):
        labels, scores = scored
        with pytest.raises(ValueError):
            threshold_for_precision(labels, scores, min_precision=0.0)


class TestFprBudget:
    def test_fpr_respected(self, scored):
        labels, scores = scored
        threshold = threshold_for_fpr(labels, scores, max_fpr=0.05)
        predictions = apply_threshold(scores, threshold)
        fpr = predictions[labels == 0].mean()
        assert fpr <= 0.06

    def test_no_negatives_rejected(self):
        with pytest.raises(ValueError):
            threshold_for_fpr(np.ones(5), np.arange(5.0), max_fpr=0.1)

    def test_invalid_budget(self, scored):
        labels, scores = scored
        with pytest.raises(ValueError):
            threshold_for_fpr(labels, scores, max_fpr=1.0)


class TestBestF1:
    def test_best_f1_dominates_quantile_threshold(self, scored):
        labels, scores = scored
        threshold, f1 = threshold_for_best_f1(labels, scores)
        from repro.ml import f1_score

        assert f1 == pytest.approx(
            f1_score(labels, apply_threshold(scores, threshold)), abs=0.02
        )
        # any other threshold cannot beat it by much
        for other in np.quantile(scores, [0.5, 0.8, 0.95]):
            assert f1 >= f1_score(labels, apply_threshold(scores, other)) - 0.02


class TestRecalibrate:
    def test_retunes_anomaly_classifier(self):
        from repro.ml import AnomalyThresholdClassifier, GMMAnomalyDetector

        rng = np.random.default_rng(3)
        benign = rng.normal(0, 1, size=(500, 4))
        anomalous = rng.normal(3, 1, size=(150, 4))
        X = np.vstack([benign, anomalous])
        y = np.array([0] * 500 + [1] * 150)
        clf = AnomalyThresholdClassifier(
            GMMAnomalyDetector(n_components=2), quantile=0.5  # too loose
        ).fit(X, y)
        before = precision_score(y, clf.predict(X))
        assert recalibrate(clf, X, y, min_precision=0.9)
        after = precision_score(y, clf.predict(X))
        assert after >= max(before, 0.88)

    def test_reports_unreachable_floor(self):
        from repro.ml import AnomalyThresholdClassifier, GMMAnomalyDetector

        rng = np.random.default_rng(4)
        # anomalies sit INSIDE the benign cluster: scores are inverted,
        # so no threshold can reach a high precision
        benign = np.vstack(
            [rng.normal(-4, 0.5, size=(150, 3)), rng.normal(4, 0.5, size=(150, 3))]
        )
        anomalous = rng.normal(0, 0.1, size=(30, 3))
        X = np.vstack([benign, anomalous])
        y = np.array([0] * 300 + [1] * 30)
        clf = AnomalyThresholdClassifier(
            GMMAnomalyDetector(n_components=2)
        ).fit(X, y)
        scores = clf.score_samples(X)
        if threshold_for_precision(y, scores, min_precision=0.999) is None:
            original = clf.threshold_
            assert not recalibrate(clf, X, y, min_precision=0.999)
            assert clf.threshold_ == original  # untouched on failure
        else:
            # detector separated them after all; the API contract is
            # simply that recalibrate succeeds then
            assert recalibrate(clf, X, y, min_precision=0.999)
