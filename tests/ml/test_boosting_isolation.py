"""Tests for gradient boosting and isolation forest."""

import numpy as np
import pytest

from repro.ml import (
    GradientBoostingClassifier,
    IsolationForest,
    accuracy_score,
    roc_auc_score,
)
from repro.ml.base import clone


class TestGradientBoosting:
    def test_solves_xor(self, xor_data):
        X, y = xor_data
        model = GradientBoostingClassifier(n_estimators=60, seed=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.97

    def test_separable_blobs(self, blobs):
        X, y = blobs
        model = GradientBoostingClassifier(n_estimators=30).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.97

    def test_more_rounds_fit_better(self, xor_data):
        X, y = xor_data
        weak = GradientBoostingClassifier(n_estimators=2, seed=0).fit(X, y)
        strong = GradientBoostingClassifier(n_estimators=40, seed=0).fit(X, y)
        assert accuracy_score(y, strong.predict(X)) >= accuracy_score(
            y, weak.predict(X)
        )

    def test_proba_rows_sum_to_one(self, blobs):
        X, y = blobs
        proba = GradientBoostingClassifier(n_estimators=10).fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()

    def test_decision_function_monotone_with_proba(self, blobs):
        X, y = blobs
        model = GradientBoostingClassifier(n_estimators=10).fit(X, y)
        raw = model.decision_function(X)
        proba = model.predict_proba(X)[:, 1]
        order = np.argsort(raw)
        assert np.all(np.diff(proba[order]) >= -1e-12)

    def test_single_class(self):
        X = np.random.default_rng(0).normal(size=(20, 2))
        y = np.ones(20, dtype=int)
        model = GradientBoostingClassifier().fit(X, y)
        assert (model.predict(X) == 1).all()

    def test_multiclass_rejected(self):
        X = np.random.default_rng(0).normal(size=(30, 2))
        y = np.repeat([0, 1, 2], 10)
        with pytest.raises(ValueError):
            GradientBoostingClassifier().fit(X, y)

    def test_invalid_subsample(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            GradientBoostingClassifier(subsample=0.0).fit(X, y)

    def test_subsampling_still_learns(self, blobs):
        X, y = blobs
        model = GradientBoostingClassifier(
            n_estimators=30, subsample=0.5, seed=0
        ).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.95

    def test_deterministic(self, blobs):
        X, y = blobs
        a = clone(GradientBoostingClassifier(seed=3)).fit(X, y).predict(X)
        b = clone(GradientBoostingClassifier(seed=3)).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_noncontiguous_labels(self, blobs):
        X, y = blobs
        model = GradientBoostingClassifier(n_estimators=10).fit(X, y * 7 + 3)
        assert set(np.unique(model.predict(X))) <= {3, 10}


class TestIsolationForest:
    def test_separates_outliers(self):
        rng = np.random.default_rng(1)
        benign = rng.normal(0, 1, size=(500, 4))
        anomalous = rng.normal(5, 1, size=(60, 4))
        forest = IsolationForest(seed=0).fit(benign)
        scores = np.concatenate(
            [forest.score_samples(benign), forest.score_samples(anomalous)]
        )
        labels = np.array([0] * 500 + [1] * 60)
        assert roc_auc_score(labels, scores) > 0.95

    def test_scores_in_unit_interval(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(200, 3))
        forest = IsolationForest(seed=0).fit(X)
        scores = forest.score_samples(X)
        assert (scores > 0).all() and (scores < 1).all()

    def test_contamination_controls_flag_rate(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(1000, 3))
        strict = IsolationForest(contamination=0.01, seed=0).fit(X)
        loose = IsolationForest(contamination=0.2, seed=0).fit(X)
        assert strict.predict(X).mean() < loose.predict(X).mean()
        assert loose.predict(X).mean() == pytest.approx(0.2, abs=0.05)

    def test_invalid_contamination(self):
        with pytest.raises(ValueError):
            IsolationForest(contamination=0.0).fit(np.zeros((10, 2)) + 1e-3)

    def test_constant_data_does_not_crash(self):
        X = np.ones((50, 3))
        forest = IsolationForest(seed=0).fit(X)
        assert forest.score_samples(X).shape == (50,)

    def test_deterministic(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(100, 2))
        a = IsolationForest(seed=9).fit(X).score_samples(X)
        b = IsolationForest(seed=9).fit(X).score_samples(X)
        assert np.allclose(a, b)

    def test_empty_scoring(self):
        X = np.random.default_rng(5).normal(size=(50, 2))
        forest = IsolationForest(seed=0).fit(X)
        assert forest.score_samples(np.empty((0, 2))).shape == (0,)

    def test_via_model_factory(self):
        from repro.core.operations import _model_factory

        model = _model_factory("IsolationForest", {})
        rng = np.random.default_rng(6)
        X = np.vstack([rng.normal(0, 1, (300, 3)), rng.normal(5, 1, (40, 3))])
        y = np.array([0] * 300 + [1] * 40)
        model.fit(X, y)
        from repro.ml import precision_score, recall_score

        predictions = model.predict(X)
        assert recall_score(y, predictions) > 0.8
