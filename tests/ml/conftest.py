"""Shared fixtures for ML substrate tests."""

import numpy as np
import pytest


@pytest.fixture
def blobs():
    """Two well-separated Gaussian blobs: (X, y), 400 samples, 5 features."""
    rng = np.random.default_rng(42)
    benign = rng.normal(0.0, 1.0, size=(200, 5))
    malicious = rng.normal(3.0, 1.0, size=(200, 5))
    X = np.vstack([benign, malicious])
    y = np.array([0] * 200 + [1] * 200)
    return X, y


@pytest.fixture
def xor_data():
    """A non-linearly-separable XOR layout (defeats linear models)."""
    rng = np.random.default_rng(7)
    centers = np.array([[0, 0], [2, 2], [0, 2], [2, 0]], dtype=float)
    labels = np.array([0, 0, 1, 1])
    X_parts, y_parts = [], []
    for center, label in zip(centers, labels):
        X_parts.append(rng.normal(center, 0.25, size=(80, 2)))
        y_parts.append(np.full(80, label))
    return np.vstack(X_parts), np.concatenate(y_parts)
