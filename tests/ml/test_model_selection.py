"""Tests for splitting, cross-validation, grid search and kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    DecisionTreeClassifier,
    GridSearch,
    KFold,
    Nystroem,
    RandomFourierFeatures,
    rbf_kernel,
    train_test_split,
)
from repro.ml.kernels import median_heuristic_gamma


class TestTrainTestSplit:
    def test_sizes(self, blobs):
        X, y = blobs
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.25)
        assert len(X_test) == pytest.approx(100, abs=2)
        assert len(X_train) + len(X_test) == len(X)
        assert len(y_train) == len(X_train)

    def test_stratification_preserves_class_ratio(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(1000, 2))
        y = np.array([0] * 900 + [1] * 100)
        _, _, _, y_test = train_test_split(X, y, test_size=0.3, seed=3)
        assert y_test.mean() == pytest.approx(0.1, abs=0.02)

    def test_rare_class_lands_on_both_sides(self):
        X = np.arange(40, dtype=float).reshape(-1, 1)
        y = np.array([0] * 38 + [1] * 2)
        _, _, y_train, y_test = train_test_split(X, y, test_size=0.3, seed=0)
        assert y_train.sum() >= 1
        assert y_test.sum() >= 1

    def test_invalid_test_size(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            train_test_split(X, y, test_size=0.0)
        with pytest.raises(ValueError):
            train_test_split(X, y, test_size=1.0)

    def test_deterministic_seed(self, blobs):
        X, y = blobs
        a = train_test_split(X, y, seed=5)
        b = train_test_split(X, y, seed=5)
        assert np.array_equal(a[0], b[0])

    def test_different_seeds_differ(self, blobs):
        X, y = blobs
        a = train_test_split(X, y, seed=5)
        b = train_test_split(X, y, seed=6)
        assert not np.array_equal(a[0], b[0])


class TestKFold:
    def test_partitions_everything_once(self):
        folds = list(KFold(n_splits=5, seed=0).split(53))
        assert len(folds) == 5
        all_test = np.sort(np.concatenate([test for _, test in folds]))
        assert np.array_equal(all_test, np.arange(53))

    def test_train_test_disjoint(self):
        for train_idx, test_idx in KFold(n_splits=4).split(40):
            assert set(train_idx).isdisjoint(test_idx)
            assert len(train_idx) + len(test_idx) == 40

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=10).split(5))

    def test_min_two_folds(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=1).split(10))


class TestGridSearch:
    def test_finds_better_depth(self, xor_data):
        X, y = xor_data
        search = GridSearch(
            DecisionTreeClassifier(),
            {"max_depth": [1, 6]},
            n_splits=3,
            seed=0,
        ).fit(X, y)
        assert search.best_params_["max_depth"] == 6
        assert search.best_score_ > 0.9
        assert len(search.results_) == 2

    def test_empty_grid_rejected(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            GridSearch(DecisionTreeClassifier(), {"max_depth": []}).fit(X, y)

    def test_predict_uses_best(self, blobs):
        X, y = blobs
        search = GridSearch(
            DecisionTreeClassifier(), {"max_depth": [3]}, n_splits=3
        ).fit(X, y)
        assert (search.predict(X) == search.best_estimator_.predict(X)).all()


class TestKernels:
    def test_rbf_diagonal_is_one(self):
        X = np.random.default_rng(0).normal(size=(10, 3))
        K = rbf_kernel(X, X, gamma=0.5)
        assert np.allclose(np.diag(K), 1.0)

    def test_rbf_decreases_with_distance(self):
        X = np.array([[0.0], [1.0], [5.0]])
        K = rbf_kernel(X[:1], X, gamma=1.0)
        assert K[0, 0] > K[0, 1] > K[0, 2]

    def test_median_heuristic_positive(self):
        X = np.random.default_rng(1).normal(size=(100, 4))
        gamma = median_heuristic_gamma(X)
        assert gamma > 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_rff_approximates_rbf(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(30, 4))
        gamma = 0.3
        exact = rbf_kernel(X, X, gamma)
        features = RandomFourierFeatures(
            n_components=2048, gamma=gamma, seed=seed
        ).fit(X)
        lifted = features.transform(X)
        approx = lifted @ lifted.T
        assert np.abs(exact - approx).mean() < 0.06

    def test_nystroem_exact_when_full_rank(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(40, 3))
        nystroem = Nystroem(n_components=40, gamma=0.5, seed=0).fit(X)
        lifted = nystroem.transform(X)
        exact = rbf_kernel(X, X, 0.5)
        assert np.abs(lifted @ lifted.T - exact).max() < 1e-6

    def test_nystroem_landmarks_clamped(self):
        X = np.random.default_rng(3).normal(size=(10, 2))
        nystroem = Nystroem(n_components=100, seed=0).fit(X)
        assert len(nystroem.landmarks_) == 10
