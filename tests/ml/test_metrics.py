"""Tests for classification metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy_score,
    balanced_accuracy_score,
    classification_summary,
    confusion_matrix,
    f1_score,
    precision_recall_curve,
    precision_score,
    recall_score,
    roc_auc_score,
)


class TestConfusionMatrix:
    def test_layout(self):
        y_true = [0, 0, 1, 1, 1]
        y_pred = [0, 1, 1, 1, 0]
        matrix = confusion_matrix(y_true, y_pred)
        assert matrix[0, 0] == 1  # tn
        assert matrix[0, 1] == 1  # fp
        assert matrix[1, 0] == 1  # fn
        assert matrix[1, 1] == 2  # tp

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 1], [0])


class TestPrecisionRecall:
    def test_perfect(self):
        assert precision_score([0, 1, 1], [0, 1, 1]) == 1.0
        assert recall_score([0, 1, 1], [0, 1, 1]) == 1.0

    def test_known_values(self):
        y_true = [1, 1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 0, 1, 0]
        assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall_score(y_true, y_pred) == pytest.approx(0.5)

    def test_zero_division_defaults(self):
        assert precision_score([0, 0], [0, 0]) == 0.0
        assert recall_score([0, 0], [0, 0]) == 0.0
        assert precision_score([0, 0], [0, 0], zero_division=1.0) == 1.0

    def test_f1_known(self):
        y_true = [1, 1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 0, 1, 0]
        precision, recall = 2 / 3, 0.5
        assert f1_score(y_true, y_pred) == pytest.approx(
            2 * precision * recall / (precision + recall)
        )

    def test_f1_degenerate(self):
        assert f1_score([0, 0], [0, 0]) == 0.0

    def test_accuracy(self):
        assert accuracy_score([0, 1, 1, 0], [0, 1, 0, 0]) == 0.75

    def test_accuracy_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_balanced_accuracy(self):
        # 9 negatives all correct, 1 positive wrong -> balanced = 0.5
        y_true = [0] * 9 + [1]
        y_pred = [0] * 10
        assert balanced_accuracy_score(y_true, y_pred) == pytest.approx(0.5)

    def test_summary_bundle(self):
        summary = classification_summary([0, 1], [0, 1])
        assert summary == {
            "precision": 1.0,
            "recall": 1.0,
            "f1": 1.0,
            "accuracy": 1.0,
        }

    @given(
        st.lists(
            st.tuples(st.integers(0, 1), st.integers(0, 1)), min_size=1, max_size=60
        )
    )
    def test_precision_recall_bounds(self, pairs):
        y_true = [p[0] for p in pairs]
        y_pred = [p[1] for p in pairs]
        assert 0.0 <= precision_score(y_true, y_pred) <= 1.0
        assert 0.0 <= recall_score(y_true, y_pred) <= 1.0
        assert 0.0 <= f1_score(y_true, y_pred) <= 1.0


class TestAuc:
    def test_perfect_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(3)
        y = rng.integers(0, 2, size=4000)
        scores = rng.random(4000)
        assert roc_auc_score(y, scores) == pytest.approx(0.5, abs=0.03)

    def test_ties_get_midrank(self):
        # All scores equal -> AUC must be exactly 0.5.
        assert roc_auc_score([0, 1, 0, 1], [5.0, 5.0, 5.0, 5.0]) == 0.5

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_auc_score([1, 1], [0.1, 0.2])

    @given(st.integers(1, 20), st.integers(1, 20), st.integers(0, 10_000))
    def test_auc_complement_symmetry(self, n_pos, n_neg, seed):
        rng = np.random.default_rng(seed)
        y = np.array([1] * n_pos + [0] * n_neg)
        scores = rng.random(n_pos + n_neg)
        auc = roc_auc_score(y, scores)
        flipped = roc_auc_score(y, -scores)
        assert auc + flipped == pytest.approx(1.0)


class TestPrecisionRecallCurve:
    def test_monotone_recall(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=100)
        scores = rng.random(100)
        _, recall, thresholds = precision_recall_curve(y, scores)
        assert np.all(np.diff(recall) >= 0)
        assert np.all(np.diff(thresholds) <= 0)

    def test_endpoint_recall_is_one(self):
        y = [0, 1, 1, 0, 1]
        scores = [0.1, 0.9, 0.5, 0.3, 0.7]
        _, recall, _ = precision_recall_curve(y, scores)
        assert recall[-1] == pytest.approx(1.0)

    def test_perfect_separation_has_unit_precision_prefix(self):
        y = [0, 0, 1, 1]
        scores = [0.1, 0.2, 0.8, 0.9]
        precision, recall, _ = precision_recall_curve(y, scores)
        assert precision[0] == 1.0
        assert recall[0] == pytest.approx(0.5)


class TestRocCurve:
    def test_trapezoid_area_matches_rank_auc(self):
        from repro.ml.metrics import roc_curve

        rng = np.random.default_rng(5)
        y = rng.integers(0, 2, size=300)
        scores = rng.normal(size=300) + y * 1.5
        fpr, tpr, thresholds = roc_curve(y, scores)
        area = np.trapezoid(
            np.concatenate([[0.0], tpr]), np.concatenate([[0.0], fpr])
        )
        assert area == pytest.approx(roc_auc_score(y, scores), abs=1e-9)

    def test_monotone_and_ends_at_one(self):
        from repro.ml.metrics import roc_curve

        rng = np.random.default_rng(6)
        y = rng.integers(0, 2, size=100)
        fpr, tpr, thresholds = roc_curve(y, rng.random(100))
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)
        assert np.all(np.diff(thresholds) < 0)
        assert fpr[-1] == pytest.approx(1.0)
        assert tpr[-1] == pytest.approx(1.0)

    def test_single_class_rejected(self):
        from repro.ml.metrics import roc_curve

        with pytest.raises(ValueError):
            roc_curve([1, 1, 1], [0.1, 0.2, 0.3])
