"""Tests for anomaly detectors: OCSVMs, GMM, autoencoders, KitNET."""

import numpy as np
import pytest

from repro.ml import (
    AnomalyThresholdClassifier,
    Autoencoder,
    GaussianMixture,
    GMMAnomalyDetector,
    KernelOCSVM,
    KitNET,
    KMeans,
    LinearOCSVM,
    roc_auc_score,
)
from repro.ml.kitsune import correlation_feature_groups


@pytest.fixture
def benign_and_anomalous():
    rng = np.random.default_rng(11)
    benign = rng.normal(0.0, 1.0, size=(400, 6))
    anomalous = rng.normal(4.0, 1.0, size=(100, 6))
    return benign, anomalous


DETECTORS = [
    LinearOCSVM(n_epochs=30),
    KernelOCSVM(n_epochs=30, n_components=96),
    GMMAnomalyDetector(n_components=2),
    Autoencoder(n_epochs=40),
    KitNET(n_epochs=25),
]


@pytest.mark.parametrize("detector", DETECTORS, ids=lambda d: type(d).__name__)
class TestDetectorContract:
    def test_scores_rank_anomalies_higher(self, detector, benign_and_anomalous):
        benign, anomalous = benign_and_anomalous
        from repro.ml.base import clone

        fitted = clone(detector).fit(benign)
        scores = np.concatenate(
            [fitted.score_samples(benign), fitted.score_samples(anomalous)]
        )
        labels = np.array([0] * len(benign) + [1] * len(anomalous))
        assert roc_auc_score(labels, scores) > 0.9

    def test_predict_is_binary(self, detector, benign_and_anomalous):
        benign, anomalous = benign_and_anomalous
        from repro.ml.base import clone

        fitted = clone(detector).fit(benign)
        predictions = fitted.predict(anomalous)
        assert set(np.unique(predictions)) <= {0, 1}

    def test_deterministic(self, detector, benign_and_anomalous):
        benign, anomalous = benign_and_anomalous
        from repro.ml.base import clone

        a = clone(detector).fit(benign).score_samples(anomalous)
        b = clone(detector).fit(benign).score_samples(anomalous)
        assert np.allclose(a, b)


class TestLinearOCSVM:
    def test_nu_bounds_training_outlier_fraction(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 4))
        model = LinearOCSVM(nu=0.1, n_epochs=30).fit(X)
        flagged = model.predict(X).mean()
        assert flagged == pytest.approx(0.1, abs=0.05)

    def test_invalid_nu_rejected(self):
        with pytest.raises(ValueError):
            LinearOCSVM(nu=0.0).fit(np.zeros((10, 2)))
        with pytest.raises(ValueError):
            LinearOCSVM(nu=1.5).fit(np.zeros((10, 2)))


class TestGaussianMixture:
    def test_recovers_two_modes(self):
        rng = np.random.default_rng(1)
        X = np.vstack(
            [rng.normal(-3, 0.5, size=(300, 2)), rng.normal(3, 0.5, size=(300, 2))]
        )
        gmm = GaussianMixture(n_components=2, seed=0).fit(X)
        centers = np.sort(gmm.means_[:, 0])
        assert centers[0] == pytest.approx(-3.0, abs=0.3)
        assert centers[1] == pytest.approx(3.0, abs=0.3)
        assert gmm.weights_.sum() == pytest.approx(1.0)

    def test_likelihood_higher_near_modes(self):
        rng = np.random.default_rng(2)
        X = rng.normal(0, 1, size=(300, 2))
        gmm = GaussianMixture(n_components=2, seed=0).fit(X)
        near = gmm.score_samples(np.zeros((1, 2)))[0]
        far = gmm.score_samples(np.full((1, 2), 10.0))[0]
        assert near > far

    def test_components_clamped_to_samples(self):
        X = np.random.default_rng(3).normal(size=(3, 2))
        gmm = GaussianMixture(n_components=10, seed=0).fit(X)
        assert len(gmm.weights_) == 3

    def test_predict_assigns_components(self):
        rng = np.random.default_rng(4)
        X = np.vstack(
            [rng.normal(-5, 0.2, size=(50, 1)), rng.normal(5, 0.2, size=(50, 1))]
        )
        gmm = GaussianMixture(n_components=2, seed=0).fit(X)
        assignments = gmm.predict(X)
        # samples from the same mode share a component
        assert len(set(assignments[:50])) == 1
        assert len(set(assignments[50:])) == 1
        assert assignments[0] != assignments[-1]


class TestKMeans:
    def test_finds_centroids(self):
        rng = np.random.default_rng(5)
        X = np.vstack(
            [rng.normal(c, 0.1, size=(100, 2)) for c in ((0, 0), (5, 5), (0, 5))]
        )
        km = KMeans(n_clusters=3, seed=0).fit(X)
        found = {tuple(np.round(c).astype(int)) for c in km.cluster_centers_}
        assert found == {(0, 0), (5, 5), (0, 5)}

    def test_inertia_decreases_with_more_clusters(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(200, 3))
        inertia = [
            KMeans(n_clusters=k, seed=0).fit(X).inertia_ for k in (1, 4, 16)
        ]
        assert inertia[0] > inertia[1] > inertia[2]

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0).fit(np.zeros((5, 1)))


class TestAutoencoder:
    def test_reconstructs_training_distribution(self):
        rng = np.random.default_rng(7)
        X = rng.normal(0, 1, size=(400, 4))
        model = Autoencoder(n_epochs=60, seed=0).fit(X)
        benign_scores = model.score_samples(X)
        anomalous_scores = model.score_samples(rng.normal(6, 1, size=(50, 4)))
        assert anomalous_scores.mean() > benign_scores.mean() * 1.5

    def test_reconstruct_shape(self):
        rng = np.random.default_rng(8)
        X = rng.normal(size=(100, 5))
        model = Autoencoder(n_epochs=10, seed=0).fit(X)
        assert model.reconstruct(X[:7]).shape == (7, 5)

    def test_threshold_flags_few_benign(self):
        rng = np.random.default_rng(9)
        X = rng.normal(size=(500, 4))
        model = Autoencoder(n_epochs=30, seed=0).fit(X)
        assert model.predict(X).mean() < 0.1


class TestKitNET:
    def test_feature_groups_cover_all_features(self):
        rng = np.random.default_rng(10)
        X = rng.normal(size=(200, 25))
        groups = correlation_feature_groups(X, max_group_size=10)
        flattened = sorted(f for group in groups for f in group)
        assert flattened == list(range(25))
        assert max(len(g) for g in groups) <= 10

    def test_small_input_single_group(self):
        X = np.random.default_rng(11).normal(size=(50, 4))
        assert correlation_feature_groups(X, max_group_size=10) == [[0, 1, 2, 3]]

    def test_correlated_features_cluster_together(self):
        rng = np.random.default_rng(12)
        base_a = rng.normal(size=300)
        base_b = rng.normal(size=300)
        X = np.column_stack(
            [base_a, base_a + rng.normal(scale=0.01, size=300)]
            + [base_b, base_b + rng.normal(scale=0.01, size=300)]
            + [rng.normal(size=300) for _ in range(8)]
        )
        groups = correlation_feature_groups(X, max_group_size=3)
        group_of = {}
        for i, group in enumerate(groups):
            for feature in group:
                group_of[feature] = i
        assert group_of[0] == group_of[1]
        assert group_of[2] == group_of[3]


class TestAnomalyThresholdClassifier:
    def test_trains_on_benign_only(self, benign_and_anomalous):
        benign, anomalous = benign_and_anomalous
        X = np.vstack([benign, anomalous])
        y = np.array([0] * len(benign) + [1] * len(anomalous))
        clf = AnomalyThresholdClassifier(GMMAnomalyDetector(n_components=2))
        clf.fit(X, y)
        predictions = clf.predict(X)
        from repro.ml import precision_score, recall_score

        assert precision_score(y, predictions) > 0.8
        assert recall_score(y, predictions) > 0.8

    def test_no_benign_rows_raises(self):
        X = np.random.default_rng(0).normal(size=(10, 2))
        y = np.ones(10, dtype=int)
        with pytest.raises(ValueError):
            AnomalyThresholdClassifier(GMMAnomalyDetector()).fit(X, y)

    def test_invalid_quantile_raises(self, benign_and_anomalous):
        benign, _ = benign_and_anomalous
        y = np.zeros(len(benign), dtype=int)
        with pytest.raises(ValueError):
            AnomalyThresholdClassifier(GMMAnomalyDetector(), quantile=1.5).fit(
                benign, y
            )

    def test_quantile_controls_false_positives(self, benign_and_anomalous):
        benign, _ = benign_and_anomalous
        y = np.zeros(len(benign), dtype=int)
        strict = AnomalyThresholdClassifier(
            GMMAnomalyDetector(n_components=2), quantile=0.999
        ).fit(benign, y)
        loose = AnomalyThresholdClassifier(
            GMMAnomalyDetector(n_components=2), quantile=0.5
        ).fit(benign, y)
        assert strict.predict(benign).mean() < loose.predict(benign).mean()
