"""Tests for the supervised classifiers."""

import numpy as np
import pytest

from repro.ml import (
    AutoML,
    DecisionTreeClassifier,
    GaussianNB,
    KNeighborsClassifier,
    LinearSVC,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
    VotingClassifier,
    accuracy_score,
)
from repro.ml.base import NotFittedError, clone


ALL_CLASSIFIERS = [
    DecisionTreeClassifier(max_depth=8),
    RandomForestClassifier(n_estimators=10, max_depth=8),
    KNeighborsClassifier(n_neighbors=5),
    GaussianNB(),
    LogisticRegression(n_epochs=40),
    LinearSVC(n_epochs=40),
    MLPClassifier(n_epochs=40),
]


@pytest.mark.parametrize(
    "model", ALL_CLASSIFIERS, ids=lambda m: type(m).__name__
)
class TestCommonBehaviour:
    def test_separable_blobs(self, model, blobs):
        X, y = blobs
        fitted = clone(model).fit(X, y)
        assert accuracy_score(y, fitted.predict(X)) > 0.95

    def test_predict_before_fit_raises(self, model, blobs):
        X, _ = blobs
        with pytest.raises((NotFittedError, AttributeError)):
            clone(model).predict(X)

    def test_output_shape_and_labels(self, model, blobs):
        X, y = blobs
        predictions = clone(model).fit(X, y).predict(X[:17])
        assert predictions.shape == (17,)
        assert set(np.unique(predictions)) <= {0, 1}

    def test_deterministic_given_seed(self, model, blobs):
        X, y = blobs
        first = clone(model).fit(X, y).predict(X)
        second = clone(model).fit(X, y).predict(X)
        assert np.array_equal(first, second)

    def test_clone_returns_unfitted_equal_params(self, model):
        duplicate = clone(model)
        assert duplicate.get_params() == model.get_params()
        assert duplicate is not model


class TestDecisionTree:
    def test_pure_node_short_circuits(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.n_leaves_ == 1
        assert tree.depth_ == 0

    def test_max_depth_respected(self, xor_data):
        X, y = xor_data
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth_ <= 2

    def test_solves_xor(self, xor_data):
        X, y = xor_data
        tree = DecisionTreeClassifier(max_depth=6).fit(X, y)
        assert accuracy_score(y, tree.predict(X)) > 0.98

    def test_min_samples_leaf(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(min_samples_leaf=50).fit(X, y)
        # every leaf must have held >= 50 training samples; with 400
        # samples that caps the leaves at 8
        assert tree.n_leaves_ <= 8

    def test_entropy_criterion(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(criterion="entropy").fit(X, y)
        assert accuracy_score(y, tree.predict(X)) > 0.95

    def test_unknown_criterion_raises(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            DecisionTreeClassifier(criterion="bogus").fit(X, y)

    def test_predict_proba_sums_to_one(self, blobs):
        X, y = blobs
        proba = DecisionTreeClassifier(max_depth=4).fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_feature_count_mismatch_raises(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier().fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(X[:, :3])

    def test_multiclass(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(c, 0.3, size=(50, 2)) for c in (0, 3, 6)])
        y = np.repeat([10, 20, 30], 50)  # non-contiguous labels
        tree = DecisionTreeClassifier().fit(X, y)
        assert accuracy_score(y == 20, tree.predict(X) == 20) > 0.95
        assert set(tree.predict(X)) <= {10, 20, 30}

    def test_feature_importances_sum_to_one(self, blobs):
        X, y = blobs
        importances = DecisionTreeClassifier().fit(X, y).feature_importances()
        assert importances.sum() == pytest.approx(1.0)


class TestRandomForest:
    def test_solves_xor(self, xor_data):
        X, y = xor_data
        forest = RandomForestClassifier(n_estimators=20, seed=0).fit(X, y)
        assert accuracy_score(y, forest.predict(X)) > 0.98

    def test_seed_changes_trees(self, blobs):
        X, y = blobs
        a = RandomForestClassifier(n_estimators=5, seed=0).fit(X, y)
        b = RandomForestClassifier(n_estimators=5, seed=1).fit(X, y)
        thresholds_a = [t.nodes_[0].threshold for t in a.trees_]
        thresholds_b = [t.nodes_[0].threshold for t in b.trees_]
        assert thresholds_a != thresholds_b

    def test_zero_estimators_rejected(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0).fit(X, y)

    def test_probability_calibration_direction(self, blobs):
        X, y = blobs
        forest = RandomForestClassifier(n_estimators=20).fit(X, y)
        proba = forest.predict_proba(X)
        assert proba[y == 1, 1].mean() > proba[y == 0, 1].mean()


class TestKNN:
    def test_distance_weighting_memorises(self, blobs):
        X, y = blobs
        knn = KNeighborsClassifier(n_neighbors=5, weights="distance").fit(X, y)
        assert accuracy_score(y, knn.predict(X)) == 1.0

    def test_k_larger_than_train_is_clamped(self):
        X = np.array([[0.0], [1.0], [10.0]])
        y = np.array([0, 0, 1])
        knn = KNeighborsClassifier(n_neighbors=50).fit(X, y)
        assert knn.predict([[0.5]])[0] == 0

    def test_bad_weights_rejected(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            KNeighborsClassifier(weights="quadratic").fit(X, y)

    def test_k_one_exact_match(self):
        X = np.array([[0.0], [5.0]])
        y = np.array([0, 1])
        knn = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert knn.predict([[4.9]])[0] == 1


class TestNaiveBayes:
    def test_recovers_class_means(self, blobs):
        X, y = blobs
        model = GaussianNB().fit(X, y)
        assert np.allclose(model.theta_[0], 0.0, atol=0.3)
        assert np.allclose(model.theta_[1], 3.0, atol=0.3)

    def test_priors(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 2))
        y = np.array([0] * 75 + [1] * 25)
        model = GaussianNB().fit(X, y)
        assert model.class_prior_[0] == pytest.approx(0.75)

    def test_constant_feature_survives(self):
        X = np.column_stack([np.ones(40), np.concatenate([np.zeros(20), np.ones(20)])])
        y = np.array([0] * 20 + [1] * 20)
        model = GaussianNB().fit(X, y)
        assert accuracy_score(y, model.predict(X)) == 1.0


class TestLinearModels:
    def test_logistic_proba_monotone_in_score(self, blobs):
        X, y = blobs
        model = LogisticRegression(n_epochs=40).fit(X, y)
        scores = model.decision_function(X)
        proba = model.predict_proba(X)[:, 1]
        order = np.argsort(scores)
        assert np.all(np.diff(proba[order]) >= -1e-12)

    def test_single_class_training(self):
        X = np.random.default_rng(0).normal(size=(20, 3))
        y = np.zeros(20, dtype=int)
        model = LogisticRegression().fit(X, y)
        assert (model.predict(X) == 0).all()

    def test_three_classes_rejected(self):
        X = np.random.default_rng(0).normal(size=(30, 2))
        y = np.repeat([0, 1, 2], 10)
        with pytest.raises(ValueError):
            LinearSVC().fit(X, y)

    def test_svc_margin_sign(self, blobs):
        X, y = blobs
        model = LinearSVC(n_epochs=40).fit(X, y)
        scores = model.decision_function(X)
        assert scores[y == 1].mean() > scores[y == 0].mean()


class TestMLP:
    def test_solves_xor(self, xor_data):
        X, y = xor_data
        mlp = MLPClassifier(hidden_sizes=(16, 16), n_epochs=150, seed=0).fit(X, y)
        assert accuracy_score(y, mlp.predict(X)) > 0.95

    def test_proba_rows_sum_to_one(self, blobs):
        X, y = blobs
        proba = MLPClassifier(n_epochs=10).fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)


class TestEnsembles:
    def test_hard_voting_majority(self, blobs):
        X, y = blobs
        ensemble = VotingClassifier(
            [
                ("tree", DecisionTreeClassifier(max_depth=4)),
                ("nb", GaussianNB()),
                ("knn", KNeighborsClassifier()),
            ]
        ).fit(X, y)
        assert accuracy_score(y, ensemble.predict(X)) > 0.95

    def test_soft_voting(self, blobs):
        X, y = blobs
        ensemble = VotingClassifier(
            [
                ("tree", DecisionTreeClassifier(max_depth=4)),
                ("nb", GaussianNB()),
            ],
            voting="soft",
        ).fit(X, y)
        proba = ensemble.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert accuracy_score(y, ensemble.predict(X)) > 0.95

    def test_empty_ensemble_rejected(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            VotingClassifier([]).fit(X, y)

    def test_bad_voting_mode_rejected(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            VotingClassifier(
                [("nb", GaussianNB())], voting="plurality"
            ).fit(X, y)


class TestAutoML:
    def test_beats_chance_and_ranks_families(self, blobs):
        X, y = blobs
        automl = AutoML(time_budget=8, seed=0).fit(X, y)
        assert accuracy_score(y, automl.predict(X)) > 0.9
        assert len(automl.leaderboard_) <= 8
        assert automl.best_family_ in {
            "random_forest",
            "decision_tree",
            "naive_bayes",
            "knn",
            "logistic",
        }

    def test_leaderboard_scores_bounded(self, blobs):
        X, y = blobs
        automl = AutoML(time_budget=6, seed=0).fit(X, y)
        for _, _, score in automl.leaderboard_:
            assert 0.0 <= score <= 1.0


class TestTreeInvariances:
    """Property-style invariances of tree-based models."""

    def test_tree_invariant_to_monotone_feature_transform(self, blobs):
        import numpy as np

        X, y = blobs
        tree_a = DecisionTreeClassifier(max_depth=5, seed=0).fit(X, y)
        # strictly monotone per-feature transform preserves split order
        X_warped = np.sign(X) * np.abs(X) ** 3 + 5.0
        tree_b = DecisionTreeClassifier(max_depth=5, seed=0).fit(X_warped, y)
        assert np.array_equal(tree_a.predict(X), tree_b.predict(X_warped))

    def test_forest_invariant_to_feature_scaling(self, blobs):
        import numpy as np

        X, y = blobs
        forest_a = RandomForestClassifier(n_estimators=8, seed=0).fit(X, y)
        forest_b = RandomForestClassifier(n_estimators=8, seed=0).fit(
            X * 1000.0, y
        )
        assert np.array_equal(
            forest_a.predict(X), forest_b.predict(X * 1000.0)
        )

    def test_tree_invariant_to_duplicate_features(self, blobs):
        import numpy as np

        X, y = blobs
        doubled = np.hstack([X, X])
        tree = DecisionTreeClassifier(max_depth=6, seed=0).fit(doubled, y)
        baseline = DecisionTreeClassifier(max_depth=6, seed=0).fit(X, y)
        assert accuracy_score(y, tree.predict(doubled)) == pytest.approx(
            accuracy_score(y, baseline.predict(X)), abs=0.02
        )
