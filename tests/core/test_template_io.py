"""Tests for template file I/O and the starter templates."""

import json

import pytest

from repro.core import (
    ExecutionEngine,
    STARTER_TEMPLATES,
    TemplateError,
    load_pipeline,
    load_template,
    save_template,
    starter_template,
)


class TestStarters:
    @pytest.mark.parametrize("name", sorted(STARTER_TEMPLATES))
    def test_every_starter_validates(self, name):
        from repro.core import Pipeline

        Pipeline.from_template(starter_template(name))

    def test_starter_is_a_copy(self):
        template = starter_template("connection-rf")
        template[0]["param"] = ["srcIP"]
        assert STARTER_TEMPLATES["connection-rf"][0]["param"] != ["srcIP"]

    def test_unknown_starter(self):
        with pytest.raises(KeyError):
            starter_template("quantum-ids")


class TestFileRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        template = starter_template("connection-rf")
        path = tmp_path / "algo.json"
        save_template(template, path)
        assert load_template(path) == template

    def test_save_rejects_malformed(self, tmp_path):
        broken = [{"func": "Explode", "input": None, "output": "x"}]
        with pytest.raises(TemplateError):
            save_template(broken, tmp_path / "x.json")
        assert not (tmp_path / "x.json").exists()

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TemplateError, match="not valid JSON"):
            load_template(path)

    def test_load_rejects_non_array(self, tmp_path):
        path = tmp_path / "obj.json"
        path.write_text(json.dumps({"func": "Groupby"}))
        with pytest.raises(TemplateError, match="JSON array"):
            load_template(path)

    def test_load_pipeline_validates(self, tmp_path):
        path = tmp_path / "bad_ref.json"
        path.write_text(json.dumps(
            [{"func": "Labels", "input": ["nothing"], "output": "y"}]
        ))
        with pytest.raises(TemplateError, match="not defined"):
            load_pipeline(path)

    def test_loaded_template_runs(self, tmp_path, small_trace):
        path = tmp_path / "run.json"
        save_template(starter_template("connection-rf"), path)
        pipeline = load_pipeline(path)
        out = ExecutionEngine(use_cache=False, track_memory=False).run(
            pipeline, small_trace, outputs=["metrics"]
        )
        assert 0.0 <= out["metrics"]["precision"] <= 1.0
