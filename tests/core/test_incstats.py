"""Tests for damped incremental statistics (Kitsune substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incstats import (
    IncStat,
    damped_group_stats,
    damped_interarrival_stats,
    group_ids_from_columns,
    kitsune_packet_features,
)


class TestIncStat:
    def test_single_update(self):
        stat = IncStat(lam=1.0)
        stat.update(0.0, 5.0)
        assert stat.w == 1.0
        assert stat.mean == 5.0
        assert stat.std == 0.0

    def test_no_decay_at_same_instant(self):
        stat = IncStat(lam=1.0)
        stat.update(0.0, 2.0)
        stat.update(0.0, 4.0)
        assert stat.w == pytest.approx(2.0)
        assert stat.mean == pytest.approx(3.0)

    def test_decay_halves_weight_per_unit_time(self):
        stat = IncStat(lam=1.0)
        stat.update(0.0, 10.0)
        stat.update(1.0, 10.0)  # old weight decayed to 0.5
        assert stat.w == pytest.approx(1.5)

    def test_old_values_fade(self):
        stat = IncStat(lam=1.0)
        stat.update(0.0, 100.0)
        stat.update(50.0, 1.0)  # the 100 has decayed to nothing
        assert stat.mean == pytest.approx(1.0, abs=1e-9)

    def test_std_of_constant_stream_is_zero(self):
        stat = IncStat(lam=0.1)
        for t in range(10):
            stat.update(float(t), 7.0)
        # damped sums accumulate tiny float error; std must stay ~0
        assert stat.std == pytest.approx(0.0, abs=1e-5)

    @given(st.lists(st.floats(0, 1000), min_size=1, max_size=30))
    @settings(max_examples=30)
    def test_weight_bounded_by_count(self, values):
        stat = IncStat(lam=0.5)
        for i, value in enumerate(values):
            stat.update(float(i), value)
        assert 0 < stat.w <= len(values) + 1e-9


class TestGroupStats:
    def test_groups_are_independent(self):
        ids = np.array([0, 1, 0, 1])
        ts = np.array([0.0, 0.0, 0.0, 0.0])
        values = np.array([10.0, 99.0, 10.0, 99.0])
        out = damped_group_stats(ids, ts, values, lam=1.0)
        assert out[2, 1] == pytest.approx(10.0)  # group 0 mean
        assert out[3, 1] == pytest.approx(99.0)  # group 1 mean

    def test_weight_column_counts_within_group(self):
        ids = np.array([0, 0, 0])
        ts = np.zeros(3)
        values = np.ones(3)
        out = damped_group_stats(ids, ts, values, lam=1.0)
        assert out[:, 0].tolist() == [1.0, 2.0, 3.0]

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            damped_group_stats(np.zeros(3, dtype=int), np.zeros(2), np.zeros(3), 1.0)

    def test_interarrival_first_packet_zero_gap(self):
        ids = np.array([0, 0])
        ts = np.array([5.0, 7.0])
        out = damped_interarrival_stats(ids, ts, lam=0.1)
        assert out[0, 1] == pytest.approx(0.0)  # first gap is 0
        assert out[1, 1] > 0.0


class TestGroupIds:
    def test_same_combination_same_id(self):
        a = np.array([1, 1, 2])
        b = np.array([7, 7, 7])
        ids = group_ids_from_columns([a, b])
        assert ids[0] == ids[1]
        assert ids[0] != ids[2]

    def test_empty(self):
        assert len(group_ids_from_columns([np.array([])])) == 0

    def test_no_columns_rejected(self):
        with pytest.raises(ValueError):
            group_ids_from_columns([])


class TestKitsuneFeatures:
    def test_shape(self, small_trace):
        sample = small_trace.select(np.arange(300))
        features = kitsune_packet_features(sample, lambdas=(1.0, 0.1))
        assert features.shape == (300, 2 * 4 * 3)
        assert np.isfinite(features).all()

    def test_flood_inflates_source_weight(self):
        from repro.traffic.builder import TraceBuilder

        builder = TraceBuilder()
        # one quiet host, one flooding host
        for i in range(50):
            builder.add_tcp(i * 1.0, 1, 2, 1000, 80, 100)
        for i in range(50):
            builder.add_tcp(40.0 + i * 0.001, 9, 2, 2000, 80, 100)
        table = builder.build()
        features = kitsune_packet_features(table, lambdas=(1.0,))
        flood_rows = table.src_ip == 9
        # damped per-source weight (column 0) much higher for the flooder
        assert features[flood_rows, 0].max() > features[~flood_rows, 0].max() * 3
