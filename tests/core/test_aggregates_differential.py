"""Differential tests: vectorized aggregates vs a naive reference.

The segmented (reduceat-based) implementations in ApplyAggregates are
the performance-critical heart of featurization; these tests recompute
each aggregate with a transparent per-flow Python loop and demand exact
agreement on randomized traces.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ExecutionEngine, Pipeline
from repro.flows import assemble_connections
from repro.net.headers import TCPFlags
from repro.traffic.builder import TraceBuilder

SPECS = [
    "count", "duration", "bandwidth", "pps", "iat_mean", "iat_std",
    "mean:length", "std:length", "min:length", "max:length", "sum:length",
    "median:length", "first:length", "last:length",
    "nunique:dst_port", "entropy:dst_port", "flag_frac:SYN", "frac_fwd",
]


@st.composite
def traces(draw):
    n = draw(st.integers(2, 50))
    builder = TraceBuilder()
    for _ in range(n):
        builder.add_tcp(
            draw(st.floats(0.0, 50.0)),
            draw(st.integers(1, 3)),
            draw(st.integers(1, 3)),
            draw(st.sampled_from([1000, 2000])),
            draw(st.sampled_from([80, 443, 8080])),
            draw(st.integers(0, 1000)),
            flags=draw(st.sampled_from([0x02, 0x10, 0x18])),
        )
    return builder.build()


def naive_aggregates(table, flows, spec: str) -> np.ndarray:
    """The transparent per-flow reference implementation."""
    out = np.zeros(len(flows))
    for i in range(len(flows)):
        indices = flows.packet_indices(i)
        positions = flows.packet_positions(i)
        ts = table.ts[indices]
        lengths = table.length[indices].astype(float)
        duration = ts.max() - ts.min()
        if spec == "count":
            out[i] = len(indices)
        elif spec == "duration":
            out[i] = duration
        elif spec == "bandwidth":
            out[i] = lengths.sum() / max(duration, 1e-6)
        elif spec == "pps":
            out[i] = len(indices) / max(duration, 1e-6)
        elif spec == "iat_mean":
            gaps = np.diff(ts)
            out[i] = np.concatenate([[0.0], gaps]).mean()
        elif spec == "iat_std":
            gaps = np.concatenate([[0.0], np.diff(ts)])
            out[i] = gaps.std()
        elif spec == "mean:length":
            out[i] = lengths.mean()
        elif spec == "std:length":
            out[i] = lengths.std()
        elif spec == "min:length":
            out[i] = lengths.min()
        elif spec == "max:length":
            out[i] = lengths.max()
        elif spec == "sum:length":
            out[i] = lengths.sum()
        elif spec == "median:length":
            out[i] = np.median(lengths)
        elif spec == "first:length":
            out[i] = lengths[0]
        elif spec == "last:length":
            out[i] = lengths[-1]
        elif spec == "nunique:dst_port":
            out[i] = len(set(table.dst_port[indices].tolist()))
        elif spec == "entropy:dst_port":
            _, counts = np.unique(table.dst_port[indices], return_counts=True)
            p = counts / counts.sum()
            out[i] = float(-(p * np.log2(p)).sum())
        elif spec == "flag_frac:SYN":
            has = (table.tcp_flags[indices] & int(TCPFlags.SYN)) > 0
            out[i] = has.mean()
        elif spec == "frac_fwd":
            out[i] = flows.forward[positions].mean()
        else:
            raise AssertionError(spec)
    return out


@settings(max_examples=20, deadline=None)
@given(table=traces())
def test_all_aggregates_match_naive_reference(table):
    flows = assemble_connections(table)
    pipeline = Pipeline.from_template(
        [
            {"func": "Groupby", "input": None, "output": "flows",
             "flowid": ["connection"]},
            {"func": "ApplyAggregates", "input": ["flows"], "output": "X",
             "list": SPECS},
        ]
    )
    engine = ExecutionEngine(use_cache=False, track_memory=False)
    X = engine.run(pipeline, table, outputs=["X"])["X"]
    for column, spec in enumerate(SPECS):
        expected = naive_aggregates(table, flows, spec)
        assert np.allclose(X[:, column], expected, rtol=1e-9, atol=1e-9), (
            spec,
            X[:, column],
            expected,
        )
