"""Tests for segmented per-flow helpers (entropy, nunique, median)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segments import (
    flow_membership,
    segmented_entropy,
    segmented_median,
    segmented_nunique,
)


class TestMembership:
    def test_basic(self):
        starts = np.array([0, 3, 5])
        counts = np.array([3, 2, 1])
        assert flow_membership(starts, counts).tolist() == [0, 0, 0, 1, 1, 2]

    def test_empty(self):
        out = flow_membership(np.array([], dtype=int), np.array([], dtype=int))
        assert len(out) == 0


class TestNunique:
    def test_known(self):
        membership = np.array([0, 0, 0, 1, 1])
        values = np.array([5, 5, 7, 1, 2])
        out = segmented_nunique(membership, values, 2)
        assert out.tolist() == [2.0, 2.0]

    def test_empty_flows_are_zero(self):
        out = segmented_nunique(np.array([], dtype=int), np.array([], dtype=int), 3)
        assert out.tolist() == [0.0, 0.0, 0.0]

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=40))
    @settings(max_examples=30)
    def test_single_flow_matches_set(self, values):
        membership = np.zeros(len(values), dtype=int)
        out = segmented_nunique(membership, np.array(values), 1)
        assert out[0] == len(set(values))


class TestEntropy:
    def test_uniform_two_values_is_one_bit(self):
        membership = np.zeros(4, dtype=int)
        values = np.array([1, 1, 2, 2])
        out = segmented_entropy(membership, values, 1)
        assert out[0] == pytest.approx(1.0)

    def test_constant_is_zero(self):
        membership = np.zeros(5, dtype=int)
        out = segmented_entropy(membership, np.full(5, 9), 1)
        assert out[0] == pytest.approx(0.0)

    def test_per_flow_isolation(self):
        membership = np.array([0, 0, 1, 1])
        values = np.array([1, 2, 3, 3])
        out = segmented_entropy(membership, values, 2)
        assert out[0] == pytest.approx(1.0)
        assert out[1] == pytest.approx(0.0)

    @given(st.lists(st.integers(0, 9), min_size=1, max_size=50))
    @settings(max_examples=30)
    def test_bounded_by_log_of_distinct(self, values):
        membership = np.zeros(len(values), dtype=int)
        out = segmented_entropy(membership, np.array(values), 1)
        distinct = len(set(values))
        assert -1e-9 <= out[0] <= np.log2(max(distinct, 2)) + 1e-9


class TestMedian:
    def test_odd_count(self):
        membership = np.array([0, 0, 0])
        values = np.array([3.0, 1.0, 2.0])
        starts = np.array([0])
        counts = np.array([3])
        out = segmented_median(membership, values, starts, counts)
        assert out[0] == 2.0

    def test_even_count_averages(self):
        membership = np.array([0, 0, 0, 0])
        values = np.array([4.0, 1.0, 2.0, 3.0])
        out = segmented_median(membership, values, np.array([0]), np.array([4]))
        assert out[0] == 2.5

    def test_two_flows(self):
        membership = np.array([0, 0, 1, 1, 1])
        values = np.array([10.0, 20.0, 1.0, 2.0, 300.0])
        out = segmented_median(
            membership, values, np.array([0, 2]), np.array([2, 3])
        )
        assert out.tolist() == [15.0, 2.0]

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=30))
    @settings(max_examples=30)
    def test_matches_numpy_single_flow(self, values):
        array = np.array(values)
        out = segmented_median(
            np.zeros(len(array), dtype=int), array,
            np.array([0]), np.array([len(array)]),
        )
        assert out[0] == pytest.approx(np.median(array))
