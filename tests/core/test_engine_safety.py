"""Engine-level enforcement of the effect analyzer's verdicts.

Regression guarantees for the safety gating: the result cache never
memoizes a stateful fixture op, seeded ops key their cache entries on
the seed param, and the parallel wave scheduler serializes unsafe steps
at ``max_workers=4`` (unless ``unsafe_parallel`` opts out).
"""

import threading
import time

import numpy as np
import pytest

from repro.core import ExecutionEngine, Pipeline
from repro.core.operations import OPERATIONS, register_operation
from repro.core.types import ValueType
from repro.obs import RingBufferSink, get_tracer

#: execution log for the module-level stateful fixture op -- the write
#: to this list is itself what makes the op stateful (L022)
_STATEFUL_CALLS = []


def _register(name, fn, *, output_type=ValueType.FEATURES, **kwargs):
    register_operation(name, (ValueType.PACKETS,), output_type, **kwargs)(fn)
    return name


@pytest.fixture(autouse=True)
def fresh_cache():
    ExecutionEngine.shared_cache.clear()
    yield
    ExecutionEngine.shared_cache.clear()


@pytest.fixture
def scratch_ops():
    """Register fixture ops for one test; always unregister after."""
    registered = []

    def add(name, fn, **kwargs):
        registered.append(_register(name, fn, **kwargs))
        return name

    yield add
    for name in registered:
        OPERATIONS.pop(name, None)


def _stateful_op(inputs, params):
    _STATEFUL_CALLS.append(len(inputs[0]))
    return np.zeros((len(inputs[0]), 1))


def _pure_op(inputs, params):
    return np.ones((len(inputs[0]), 1))


def _capture(fn):
    sink = RingBufferSink(capacity=None)
    tracer = get_tracer()
    tracer.add_sink(sink)
    try:
        fn()
    finally:
        tracer.remove_sink(sink)
    return sink.events()


def _step_spans(events, operation=None):
    spans = [
        e for e in events
        if e["kind"] == "span" and e["name"].startswith("step:")
    ]
    if operation is not None:
        spans = [e for e in spans if e["attrs"]["operation"] == operation]
    return spans


class TestCacheRefusal:
    def test_stateful_op_is_never_memoized(self, scratch_ops, small_trace):
        scratch_ops("StatefulFixture", _stateful_op)
        scratch_ops("PureFixture", _pure_op)
        template = [
            {"func": "StatefulFixture", "input": None, "output": "bad"},
            {"func": "PureFixture", "input": None, "output": "good"},
        ]
        pipeline = Pipeline.from_template(template)
        engine = ExecutionEngine(track_memory=False)
        _STATEFUL_CALLS.clear()

        engine.run(pipeline, small_trace, outputs=["bad", "good"],
                   source_token="tok")
        engine.run(pipeline, small_trace, outputs=["bad", "good"],
                   source_token="tok")

        # the stateful op executed both runs; the pure one was served
        # from the shared cache the second time
        assert len(_STATEFUL_CALLS) == 2
        cached = {
            (p.operation, p.cached) for p in engine.last_report.profiles
        }
        assert ("PureFixture", True) in cached
        assert ("StatefulFixture", False) in cached

    def test_refusal_is_visible_in_spans(self, scratch_ops, small_trace):
        scratch_ops("StatefulFixture", _stateful_op)
        template = [
            {"func": "StatefulFixture", "input": None, "output": "bad"},
        ]
        pipeline = Pipeline.from_template(template)
        events = _capture(
            lambda: ExecutionEngine(track_memory=False).run(
                pipeline, small_trace, source_token="tok"
            )
        )
        (span,) = _step_spans(events, "StatefulFixture")
        assert span["attrs"]["purity"] == "stateful"
        assert span["attrs"]["cache_refused"] == "stateful"

    def test_pure_steps_carry_purity_attr(self, small_trace):
        template = [
            {"func": "Groupby", "input": None, "output": "flows",
             "flowid": ["connection"]},
        ]
        events = _capture(
            lambda: ExecutionEngine(track_memory=False).run(
                Pipeline.from_template(template), small_trace,
                source_token="tok",
            )
        )
        (span,) = _step_spans(events, "Groupby")
        assert span["attrs"]["purity"] == "pure"
        assert "cache_refused" not in span["attrs"]


class TestSeededCacheKeys:
    def test_key_material_names_the_seed(self, small_trace):
        template = [
            {"func": "Downsample", "input": None, "output": "pkts",
             "max_packets": 10, "seed": 7},
        ]
        pipeline = Pipeline.from_template(template)
        engine = ExecutionEngine()
        material = engine._key_material(
            pipeline.calls[0], {"__source__": "src:tok"}
        )
        assert "seeds[seed=7]" in material

    def test_same_seed_hits_different_seed_misses(self, small_trace):
        def run(seed):
            template = [
                {"func": "Downsample", "input": None, "output": "pkts",
                 "max_packets": 10, "seed": seed},
            ]
            engine = ExecutionEngine(track_memory=False)
            engine.run(Pipeline.from_template(template), small_trace,
                       outputs=["pkts"], source_token="tok")
            return engine.last_report.profiles[0].cached

        assert run(1) is False
        assert run(1) is True  # same seed: memoized
        assert run(2) is False  # different seed: distinct cache entry


class TestWaveSerialization:
    def _tracking_op(self, active, peak, lock, delay=0.02):
        def fn(inputs, params):
            with lock:
                active[0] += 1
                peak[0] = max(peak[0], active[0])
            time.sleep(delay)
            with lock:
                active[0] -= 1
            return np.zeros((len(inputs[0]), 1))

        return fn

    def _fanout_template(self, names):
        return [
            {"func": name, "input": None, "output": f"x{i}"}
            for i, name in enumerate(names)
        ]

    def test_stateful_steps_never_overlap(self, scratch_ops, small_trace):
        active, peak, lock = [0], [0], threading.Lock()
        # the mutable closure over active/peak is exactly what flags
        # these ops stateful -- and what makes overlap observable
        names = [
            scratch_ops(f"Tracked{i}", self._tracking_op(active, peak, lock))
            for i in range(4)
        ]
        template = self._fanout_template(names)
        outputs = [step["output"] for step in template]
        engine = ExecutionEngine(
            use_cache=False, parallel=True, max_workers=4,
            track_memory=False,
        )
        engine.run(Pipeline.from_template(template), small_trace,
                   outputs=outputs)
        assert peak[0] == 1

    def test_serialization_is_visible_in_spans(self, scratch_ops,
                                               small_trace):
        active, peak, lock = [0], [0], threading.Lock()
        names = [
            scratch_ops(f"Tracked{i}", self._tracking_op(active, peak, lock))
            for i in range(2)
        ]
        template = self._fanout_template(names)
        outputs = [step["output"] for step in template]
        events = _capture(
            lambda: ExecutionEngine(
                use_cache=False, parallel=True, max_workers=4,
                track_memory=False,
            ).run(Pipeline.from_template(template), small_trace,
                  outputs=outputs)
        )
        steps = _step_spans(events)
        assert all(e["attrs"]["serialized"] is True for e in steps)
        (wave,) = [
            e for e in events
            if e["kind"] == "span" and e["name"] == "wave"
        ]
        assert wave["attrs"]["serialized"] == len(names)

    def test_unsafe_parallel_escape_hatch(self, scratch_ops, small_trace):
        active, peak, lock = [0], [0], threading.Lock()
        names = [
            scratch_ops(f"Tracked{i}", self._tracking_op(active, peak, lock))
            for i in range(4)
        ]
        template = self._fanout_template(names)
        outputs = [step["output"] for step in template]
        events = _capture(
            lambda: ExecutionEngine(
                use_cache=False, parallel=True, max_workers=4,
                track_memory=False, unsafe_parallel=True,
            ).run(Pipeline.from_template(template), small_trace,
                  outputs=outputs)
        )
        steps = _step_spans(events)
        # the hold-back is disabled: nothing is marked serialized...
        assert all("serialized" not in e["attrs"] for e in steps)
        (wave,) = [
            e for e in events
            if e["kind"] == "span" and e["name"] == "wave"
        ]
        assert wave["attrs"]["serialized"] == 0
        # ...but the cache still refuses stateful results
        assert all(
            e["attrs"].get("cache_refused") is None for e in steps
        )  # use_cache=False: no refusal attr either way
        run = next(e for e in events if e["name"] == "run")
        assert run["attrs"]["unsafe_parallel"] is True

    def test_pure_catalog_ops_still_parallelize(self, small_trace):
        template = [
            {"func": "Groupby", "input": None, "output": "flows",
             "flowid": ["connection"]},
            {"func": "ApplyAggregates", "input": ["flows"], "output": "A",
             "list": ["count"]},
            {"func": "Labels", "input": ["flows"], "output": "y"},
        ]
        events = _capture(
            lambda: ExecutionEngine(
                use_cache=False, parallel=True, max_workers=4,
                track_memory=False,
            ).run(Pipeline.from_template(template), small_trace,
                  outputs=["A", "y"])
        )
        waves = [
            e for e in events
            if e["kind"] == "span" and e["name"] == "wave"
        ]
        assert waves
        assert all(e["attrs"]["serialized"] == 0 for e in waves)
        steps = _step_spans(events)
        assert all("serialized" not in e["attrs"] for e in steps)


class TestSafetyMetrics:
    def test_counters_increment(self, scratch_ops, small_trace):
        from repro.obs import METRICS
        from repro.obs import metrics as metric_names

        scratch_ops("StatefulFixture", _stateful_op)
        template = [
            {"func": "StatefulFixture", "input": None, "output": "bad"},
        ]
        refusals = METRICS.counter(metric_names.CACHE_REFUSALS)
        serialized = METRICS.counter(metric_names.STEPS_SERIALIZED)
        before = (refusals.value, serialized.value)
        ExecutionEngine(parallel=True, max_workers=4,
                        track_memory=False).run(
            Pipeline.from_template(template), small_trace,
            source_token="tok",
        )
        assert refusals.value == before[0] + 1
        assert serialized.value == before[1] + 1
