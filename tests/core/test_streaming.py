"""Tests for the streaming (online) detection mode."""

import numpy as np
import pytest

from repro.algorithms import build_algorithm
from repro.core.incstats import (
    KitsuneStreamState,
    kitsune_packet_features,
    kitsune_packet_features_stream,
)
from repro.core.operations import OPERATIONS
from repro.core.streaming import (
    StreamingFlowDetector,
    StreamingKitsune,
    chunked,
)
from repro.net.table import PacketTable
from repro.traffic import AttackSpec, NetworkScenario


@pytest.fixture(scope="module")
def benign_trace():
    return NetworkScenario(
        name="benign",
        device_counts={"camera": 1, "thermostat": 1, "smart_hub": 1},
        duration=120.0,
        seed=31,
    ).generate()


@pytest.fixture(scope="module")
def attack_trace():
    return NetworkScenario(
        name="attacked",
        device_counts={"camera": 1, "thermostat": 1, "smart_hub": 1},
        duration=120.0,
        seed=32,
        attacks=(AttackSpec("dos_syn_flood", 0.4, 0.7, intensity=0.2),),
    ).generate()


class TestChunking:
    def test_chunks_partition_trace(self, benign_trace):
        chunks = list(chunked(benign_trace, 10.0))
        assert sum(len(c) for c in chunks) == len(benign_trace)
        # chunks are time-ordered and disjoint
        for left, right in zip(chunks, chunks[1:]):
            assert left.ts.max() <= right.ts.min() + 10.0

    def test_invalid_chunk_size(self, benign_trace):
        with pytest.raises(ValueError):
            list(chunked(benign_trace, 0.0))

    def test_empty_trace(self):
        assert list(chunked(PacketTable.empty(), 5.0)) == []


class TestStreamingKitsune:
    @pytest.fixture(scope="class")
    def detector(self, benign_trace):
        small = benign_trace.select(np.arange(0, len(benign_trace), 4))
        return StreamingKitsune.train(small, n_epochs=10, seed=0)

    def test_verdict_per_packet(self, detector, attack_trace):
        chunk = attack_trace.select(np.arange(200))
        verdicts = detector.process_chunk(chunk)
        assert len(verdicts) == 200
        assert all(v.unit == "packet" for v in verdicts)

    def test_chunking_invariance(self, benign_trace, attack_trace):
        """Scores must not depend on chunk boundaries."""
        small_benign = benign_trace.select(np.arange(0, len(benign_trace), 4))
        sample = attack_trace.select(np.arange(400))

        one = StreamingKitsune.train(small_benign, n_epochs=5, seed=0)
        single = [
            v.score for v in one.process_chunk(sample)
        ]
        two = StreamingKitsune.train(small_benign, n_epochs=5, seed=0)
        halves = []
        halves += two.process_chunk(sample.select(np.arange(0, 150)))
        halves += two.process_chunk(sample.select(np.arange(150, 400)))
        assert np.allclose(single, [v.score for v in halves])

    def test_flags_flood_packets(self, detector, attack_trace):
        verdicts = []
        for chunk in chunked(attack_trace, 20.0):
            verdicts.extend(detector.process_chunk(chunk))
        labels = attack_trace.sort_by_time().label
        flagged = np.array([v.is_anomalous for v in verdicts])
        # flood traffic is flagged at a much higher rate than benign
        flood_rate = flagged[labels == 1].mean()
        benign_rate = flagged[labels == 0].mean()
        assert flood_rate > benign_rate

    def test_empty_chunk(self, detector):
        assert detector.process_chunk(PacketTable.empty()) == []


class TestKitsuneStreamState:
    """Chunk-boundary invariance of the carried Kitsune statistics."""

    LAMBDAS = (1.0, 0.1)

    def batch(self, table):
        return kitsune_packet_features(table, self.LAMBDAS)

    def streamed(self, table, chunks):
        state = KitsuneStreamState(self.LAMBDAS)
        parts = [
            kitsune_packet_features_stream(chunk, self.LAMBDAS, state)
            for chunk in chunks
        ]
        return np.concatenate(parts, axis=0)

    def test_single_packet_chunks_match_batch(self, benign_trace):
        table = benign_trace.sort_by_time().select(np.arange(120))
        chunks = [table.select(np.array([i])) for i in range(len(table))]
        assert np.array_equal(self.batch(table), self.streamed(table, chunks))

    def test_one_second_chunks_match_batch(self, benign_trace):
        table = benign_trace.sort_by_time()
        streamed = self.streamed(table, chunked(table, 1.0))
        assert np.array_equal(self.batch(table), streamed)

    def test_whole_trace_chunk_matches_batch(self, benign_trace):
        table = benign_trace.sort_by_time()
        streamed = self.streamed(table, [table])
        assert np.array_equal(self.batch(table), streamed)

    def test_stream_wrapper_validates_state(self, benign_trace):
        with pytest.raises(TypeError):
            kitsune_packet_features_stream(benign_trace, self.LAMBDAS, {})
        state = KitsuneStreamState((1.0,))
        with pytest.raises(ValueError):
            kitsune_packet_features_stream(
                benign_trace, self.LAMBDAS, state
            )

    def test_evict_idle_bounds_state(self, benign_trace):
        table = benign_trace.sort_by_time()
        state = KitsuneStreamState(self.LAMBDAS)
        state.features(table)
        populated = len(state)
        assert populated > 0
        # nothing is older than the trace itself
        assert state.evict_idle(float(table.ts.max()), 3600.0) == 0
        assert len(state) == populated
        # everything is idle from far enough in the future
        evicted = state.evict_idle(float(table.ts.max()) + 1e6, 3600.0)
        assert evicted == populated
        assert len(state) == 0

    def test_state_survives_eviction(self, benign_trace):
        table = benign_trace.sort_by_time()
        state = KitsuneStreamState(self.LAMBDAS)
        state.features(table)
        state.evict_idle(float(table.ts.max()) + 1e6, 3600.0)
        # an evicted stream restarts cleanly, like a fresh host
        fresh = KitsuneStreamState(self.LAMBDAS)
        assert np.array_equal(state.features(table), fresh.features(table))


class TestConvertedOpStreams:
    """Every op with a registered stream body is chunk-size invariant."""

    CONVERTED = {
        "ProtocolOneHot": {},
        "PacketFields": {"fields": ["length", "ttl"]},
        "NprintEncode": {"payload_bytes": 4},
        "Labels": {},
        "KitsuneFeatures": {"lambdas": [1.0, 0.1]},
    }

    @pytest.mark.parametrize("name", sorted(CONVERTED))
    def test_chunked_stream_matches_batch(self, benign_trace, name):
        operation = OPERATIONS[name]
        assert operation.stream_fn is not None
        table = benign_trace.sort_by_time().select(np.arange(200))
        params = operation.validate_params(dict(self.CONVERTED[name]))
        expected = operation.fn([table], params)
        for splits in ([len(table)], [77, 123], [1] * len(table)):
            state: dict = {}
            parts, start = [], 0
            for size in splits:
                chunk = table.select(np.arange(start, start + size))
                parts.append(
                    operation.stream_fn([chunk], params, state)
                )
                start += size
            streamed = np.concatenate(parts, axis=0)
            assert np.array_equal(expected, streamed), (name, splits)


class TestStreamingFlowDetector:
    @pytest.fixture(scope="class")
    def detector(self, attack_trace):
        spec = build_algorithm("A14")
        X, y = spec.featurize(attack_trace)
        model = spec.build_model()
        model.fit(X, y)
        return StreamingFlowDetector(spec, model, timeout=30.0)

    def test_emits_flow_verdicts(self, detector, attack_trace):
        verdicts = []
        for chunk in chunked(attack_trace, 15.0):
            verdicts.extend(detector.process_chunk(chunk))
        assert len(verdicts) > 50
        assert all(v.unit == "flow" for v in verdicts)
        detector.flush()

    def test_detects_the_flood(self, attack_trace):
        spec = build_algorithm("A14")
        X, y = spec.featurize(attack_trace)
        model = spec.build_model()
        model.fit(X, y)
        detector = StreamingFlowDetector(spec, model, timeout=30.0)
        verdicts = []
        for chunk in chunked(attack_trace, 15.0):
            verdicts.extend(detector.process_chunk(chunk))
        anomalous = [v for v in verdicts if v.is_anomalous]
        assert len(anomalous) > 10

    def test_cross_chunk_flow_reassembly(self):
        # one long flow split across two chunks must emit exactly once,
        # with all its packets
        from repro.traffic.builder import TraceBuilder

        builder = TraceBuilder()
        for i in range(10):
            builder.add_tcp(float(i), 1, 2, 4000, 80, 100)
        builder.add_tcp(10.0, 1, 2, 4000, 80, 0, flags=0x11)  # FIN|ACK
        table = builder.build()

        spec = build_algorithm("A15")
        reference = NetworkScenario(
            name="ref", device_counts={"smart_hub": 1}, duration=60.0, seed=1
        ).generate()
        X, y = spec.featurize(reference)
        model = spec.build_model()
        model.fit(X, y)

        detector = StreamingFlowDetector(spec, model, timeout=1000.0)
        first = detector.process_chunk(table.select(table.ts < 5.0))
        second = detector.process_chunk(table.select(table.ts >= 5.0))
        assert first == []  # flow still open after the first chunk
        assert len(second) == 1

    def test_idle_timeout_evicts_under_out_of_order_timestamps(self):
        # flow A goes idle; a later chunk arrives with its packets out
        # of order (a fresh packet at t=50 *before* a straggler at t=3
        # in delivery order).  The detector clock is the max timestamp
        # seen, so flow A is evicted exactly once, and the straggler --
        # already older than the timeout horizon -- is emitted
        # immediately rather than buffered forever.
        from repro.traffic.builder import TraceBuilder

        builder = TraceBuilder()
        builder.add_tcp(0.0, 1, 2, 4000, 80, 100)  # flow A
        builder.add_tcp(2.0, 1, 2, 4000, 80, 100)  # flow A
        builder.add_tcp(3.0, 3, 4, 5000, 80, 100)  # flow C (straggler)
        builder.add_tcp(50.0, 5, 6, 6000, 80, 100)  # flow B (fresh)
        table = builder.build(sort=False)

        spec = build_algorithm("A15")
        reference = NetworkScenario(
            name="ref", device_counts={"smart_hub": 1}, duration=60.0, seed=1
        ).generate()
        X, y = spec.featurize(reference)
        model = spec.build_model()
        model.fit(X, y)

        detector = StreamingFlowDetector(spec, model, timeout=30.0)
        first = detector.process_chunk(
            table.select(np.array([0, 1], dtype=np.int64))
        )
        assert first == []
        # deliver t=50 before t=3 inside the second chunk
        second = detector.process_chunk(
            table.select(np.array([3, 2], dtype=np.int64))
        )
        assert sorted(v.src_ip for v in second) == [1, 3]
        assert len([v for v in second if v.src_ip == 1]) == 1
        # only the fresh flow stays open
        assert len(detector._buffers) == 1
        # a third chunk must not resurrect or re-emit the evicted flows
        third = detector.process_chunk(
            table.select(np.array([], dtype=np.int64))
        )
        assert third == []
        detector.flush()
        assert detector._buffers == {}
