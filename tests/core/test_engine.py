"""Tests for the execution engine: caching, profiling, DCE, parallel."""

import numpy as np
import pytest

from repro.core import ExecutionEngine, Pipeline, PipelineError
from repro.core.engine import fingerprint_table


TEMPLATE = [
    {"func": "Groupby", "input": None, "output": "flows",
     "flowid": ["connection"]},
    {"func": "ApplyAggregates", "input": ["flows"], "output": "X",
     "list": ["count", "duration", "mean:length"]},
    {"func": "Labels", "input": ["flows"], "output": "y"},
]


@pytest.fixture(autouse=True)
def fresh_cache():
    ExecutionEngine.shared_cache.clear()
    yield
    ExecutionEngine.shared_cache.clear()


class TestExecution:
    def test_returns_requested_outputs(self, small_trace):
        engine = ExecutionEngine(track_memory=False)
        out = engine.run(
            Pipeline.from_template(TEMPLATE), small_trace, outputs=["X", "y"]
        )
        assert set(out) == {"X", "y"}
        assert len(out["X"]) == len(out["y"])

    def test_default_output_is_last_step(self, small_trace):
        engine = ExecutionEngine(track_memory=False)
        out = engine.run(Pipeline.from_template(TEMPLATE), small_trace)
        assert set(out) == {"y"}

    def test_missing_output_raises(self, small_trace):
        engine = ExecutionEngine(track_memory=False)
        with pytest.raises(KeyError):
            engine.run(
                Pipeline.from_template(TEMPLATE), small_trace,
                outputs=["nonexistent"],
            )

    def test_operation_failure_wrapped(self, small_trace):
        # statically well-typed, but the two feature matrices have
        # different row counts -- only the runtime can see that
        template = [
            {"func": "Groupby", "input": None, "output": "flows",
             "flowid": ["connection"]},
            {"func": "Groupby", "input": None, "output": "uni",
             "flowid": ["5tuple"]},
            {"func": "ApplyAggregates", "input": ["flows"], "output": "A",
             "list": ["count"]},
            {"func": "ApplyAggregates", "input": ["uni"], "output": "B",
             "list": ["count"]},
            {"func": "ConcatFeatures", "input": ["A", "B"], "output": "X"},
        ]
        engine = ExecutionEngine(track_memory=False)
        with pytest.raises(PipelineError) as info:
            engine.run(Pipeline.from_template(template), small_trace)
        assert info.value.operation == "ConcatFeatures"
        assert info.value.step == 4

    def test_operation_failure_chains_cause(self, small_trace):
        template = [
            {"func": "Groupby", "input": None, "output": "flows",
             "flowid": ["connection"]},
            {"func": "Groupby", "input": None, "output": "uni",
             "flowid": ["5tuple"]},
            {"func": "ApplyAggregates", "input": ["flows"], "output": "A",
             "list": ["count"]},
            {"func": "ApplyAggregates", "input": ["uni"], "output": "B",
             "list": ["count"]},
            {"func": "ConcatFeatures", "input": ["A", "B"], "output": "X"},
        ]
        engine = ExecutionEngine(track_memory=False)
        with pytest.raises(PipelineError) as info:
            engine.run(Pipeline.from_template(template), small_trace)
        # raised with `raise ... from cause`: the original failure is
        # both on the traceback chain and on the .cause attribute
        assert info.value.__cause__ is not None
        assert info.value.__cause__ is info.value.cause

    def test_bad_aggregate_caught_statically(self):
        # what used to be a runtime PipelineError is now rejected by
        # the static analyzer before anything executes
        from repro.core import TemplateDiagnosticError

        template = TEMPLATE[:1] + [
            {"func": "ApplyAggregates", "input": ["flows"], "output": "X",
             "list": ["bogus:length"]},
        ]
        with pytest.raises(TemplateDiagnosticError) as info:
            Pipeline.from_template(template)
        assert "L018" in info.value.codes()


class TestCaching:
    def test_second_run_hits_cache(self, small_trace):
        engine = ExecutionEngine(track_memory=False)
        pipeline = Pipeline.from_template(TEMPLATE)
        engine.run(pipeline, small_trace, source_token="t")
        engine.run(pipeline, small_trace, source_token="t")
        cached = [p.cached for p in engine.last_report.profiles]
        assert all(cached)

    def test_prefix_shared_across_templates(self, small_trace):
        # Two different algorithms sharing a Groupby pay for it once.
        engine = ExecutionEngine(track_memory=False)
        other = TEMPLATE[:1] + [
            {"func": "FirstNPackets", "input": ["flows"], "output": "X",
             "n": 4},
        ]
        engine.run(Pipeline.from_template(TEMPLATE), small_trace, source_token="t")
        engine.run(Pipeline.from_template(other), small_trace, source_token="t")
        profiles = {p.operation: p.cached for p in engine.last_report.profiles}
        assert profiles["Groupby"] is True
        assert profiles["FirstNPackets"] is False

    def test_different_params_not_shared(self, small_trace):
        engine = ExecutionEngine(track_memory=False)
        variant = [dict(TEMPLATE[0], flowid=["5tuple"])] + TEMPLATE[1:]
        engine.run(Pipeline.from_template(TEMPLATE), small_trace, source_token="t")
        engine.run(Pipeline.from_template(variant), small_trace, source_token="t")
        profiles = {p.operation: p.cached for p in engine.last_report.profiles}
        assert profiles["Groupby"] is False

    def test_different_sources_not_shared(self, small_trace):
        engine = ExecutionEngine(track_memory=False)
        pipeline = Pipeline.from_template(TEMPLATE)
        engine.run(pipeline, small_trace, source_token="a")
        engine.run(pipeline, small_trace, source_token="b")
        assert not any(p.cached for p in engine.last_report.profiles)

    def test_cache_disabled(self, small_trace):
        engine = ExecutionEngine(use_cache=False, track_memory=False)
        pipeline = Pipeline.from_template(TEMPLATE)
        engine.run(pipeline, small_trace, source_token="t")
        engine.run(pipeline, small_trace, source_token="t")
        assert not any(p.cached for p in engine.last_report.profiles)

    def test_cached_results_identical(self, small_trace):
        engine = ExecutionEngine(track_memory=False)
        pipeline = Pipeline.from_template(TEMPLATE)
        first = engine.run(pipeline, small_trace, outputs=["X"], source_token="t")
        second = engine.run(pipeline, small_trace, outputs=["X"], source_token="t")
        assert np.array_equal(first["X"], second["X"])

    def test_fingerprint_stable_and_sensitive(self, small_trace):
        a = fingerprint_table(small_trace)
        assert a == fingerprint_table(small_trace)
        mutated = small_trace.select(np.arange(len(small_trace) - 1))
        assert fingerprint_table(mutated) != a

    def test_fingerprint_covers_dtype(self):
        # identical bytes, different schema: int32 zeros and float32
        # zeros serialize to the same buffer but are different traces
        from repro.net.table import PacketTable

        ints = PacketTable(columns={"a": np.zeros(8, dtype=np.int32)})
        floats = PacketTable(columns={"a": np.zeros(8, dtype=np.float32)})
        assert ints.columns["a"].tobytes() == floats.columns["a"].tobytes()
        assert fingerprint_table(ints) != fingerprint_table(floats)

    def test_fingerprint_covers_column_order(self):
        from repro.net.table import PacketTable

        a = np.arange(4, dtype=np.int64)
        b = np.arange(4, dtype=np.int64)
        ab = PacketTable(columns={"a": a, "b": b})
        ba = PacketTable(columns={"b": b, "a": a})
        assert fingerprint_table(ab) != fingerprint_table(ba)

    def test_cache_bounded(self, small_trace):
        cache = ExecutionEngine.shared_cache
        cache.max_entries = 4
        try:
            engine = ExecutionEngine(track_memory=False)
            pipeline = Pipeline.from_template(TEMPLATE)
            for i in range(5):
                engine.run(pipeline, small_trace, source_token=f"t{i}")
            assert len(cache) <= 4
        finally:
            cache.max_entries = 256


class TestProfilingAndMemory:
    def test_profile_covers_every_step(self, small_trace):
        engine = ExecutionEngine(use_cache=False, track_memory=True)
        engine.run(Pipeline.from_template(TEMPLATE), small_trace)
        assert len(engine.last_report.profiles) == len(TEMPLATE)
        assert engine.last_report.total_seconds > 0

    def test_memory_tracked(self, small_trace):
        engine = ExecutionEngine(use_cache=False, track_memory=True)
        engine.run(Pipeline.from_template(TEMPLATE), small_trace)
        assert engine.last_report.peak_memory_bytes > 0

    def test_hotspots_sorted(self, small_trace):
        engine = ExecutionEngine(use_cache=False, track_memory=False)
        engine.run(Pipeline.from_template(TEMPLATE), small_trace)
        hotspots = engine.last_report.hotspots(top=2)
        assert len(hotspots) == 2
        assert hotspots[0].wall_seconds >= hotspots[1].wall_seconds

    def test_render_contains_operations(self, small_trace):
        engine = ExecutionEngine(use_cache=False, track_memory=False)
        engine.run(Pipeline.from_template(TEMPLATE), small_trace)
        rendered = engine.last_report.render()
        assert "Groupby" in rendered
        assert "total:" in rendered

    def test_dead_values_dropped(self, small_trace):
        # 'flows' is last used at step 2; only the requested outputs
        # should survive; intermediate flows must have been freed.
        engine = ExecutionEngine(use_cache=False, track_memory=False)
        out = engine.run(
            Pipeline.from_template(TEMPLATE), small_trace, outputs=["y"]
        )
        assert set(out) == {"y"}


class TestParallelExecution:
    def test_parallel_matches_serial(self, small_trace):
        template = [
            {"func": "Groupby", "input": None, "output": "flows",
             "flowid": ["connection"]},
            # these three are independent given 'flows'
            {"func": "ApplyAggregates", "input": ["flows"], "output": "A",
             "list": ["count", "duration"]},
            {"func": "FirstNPackets", "input": ["flows"], "output": "B",
             "n": 3},
            {"func": "ZeekConnLog", "input": ["flows"], "output": "C"},
            {"func": "ConcatFeatures", "input": ["A", "B"], "output": "AB"},
            {"func": "ConcatFeatures", "input": ["AB", "C"], "output": "X"},
        ]
        serial = ExecutionEngine(use_cache=False, track_memory=False).run(
            Pipeline.from_template(template), small_trace, outputs=["X"]
        )
        parallel = ExecutionEngine(
            use_cache=False, parallel=True, track_memory=False
        ).run(Pipeline.from_template(template), small_trace, outputs=["X"])
        assert np.array_equal(serial["X"], parallel["X"])


PARALLEL_TEMPLATE = [
    {"func": "Groupby", "input": None, "output": "flows",
     "flowid": ["connection"]},
    # these three are independent given 'flows'
    {"func": "ApplyAggregates", "input": ["flows"], "output": "A",
     "list": ["count", "duration"]},
    {"func": "FirstNPackets", "input": ["flows"], "output": "B", "n": 3},
    {"func": "ZeekConnLog", "input": ["flows"], "output": "C"},
    {"func": "ConcatFeatures", "input": ["A", "B"], "output": "AB"},
    {"func": "ConcatFeatures", "input": ["AB", "C"], "output": "X"},
]


class TestObservability:
    def _capture(self, fn):
        """Run ``fn`` with an unbounded sink on the global tracer."""
        from repro.obs import RingBufferSink, get_tracer

        sink = RingBufferSink(capacity=None)
        tracer = get_tracer()
        tracer.add_sink(sink)
        try:
            fn()
        finally:
            tracer.remove_sink(sink)
        return sink.events()

    def test_parallel_profiles_ordered_by_step(self, small_trace):
        engine = ExecutionEngine(
            use_cache=False, parallel=True, max_workers=4,
            track_memory=False,
        )
        engine.run(Pipeline.from_template(PARALLEL_TEMPLATE), small_trace,
                   outputs=["X"])
        steps = [p.step for p in engine.last_report.profiles]
        assert steps == sorted(steps)
        assert len(steps) == len(PARALLEL_TEMPLATE)

    def test_serial_and_parallel_span_trees_equivalent(self, small_trace):
        """Same steps, same cache keys, regardless of execution mode."""

        def steps_of(parallel):
            events = self._capture(lambda: ExecutionEngine(
                use_cache=False, parallel=parallel, track_memory=False
            ).run(Pipeline.from_template(PARALLEL_TEMPLATE), small_trace,
                  outputs=["X"], source_token="t"))
            return {
                (e["attrs"]["operation"], e["attrs"]["output"],
                 e["attrs"]["cache_key"])
                for e in events
                if e["kind"] == "span" and e["name"].startswith("step:")
            }

        serial, parallel = steps_of(False), steps_of(True)
        assert serial == parallel
        assert len(serial) == len(PARALLEL_TEMPLATE)

    def test_parallel_steps_attributed_to_waves(self, small_trace):
        events = self._capture(lambda: ExecutionEngine(
            use_cache=False, parallel=True, max_workers=4,
            track_memory=False,
        ).run(Pipeline.from_template(PARALLEL_TEMPLATE), small_trace,
              outputs=["X"]))
        spans = {e["span_id"]: e for e in events if e["kind"] == "span"}
        waves = [e for e in spans.values() if e["name"] == "wave"]
        steps = [e for e in spans.values() if e["name"].startswith("step:")]
        assert len(waves) >= 3  # Groupby / fan-out / joins
        run_ids = {e["span_id"] for e in spans.values() if e["name"] == "run"}
        for wave in waves:
            assert wave["parent_id"] in run_ids
        for step in steps:
            parent = spans[step["parent_id"]]
            assert parent["name"] == "wave"
            assert "thread" in step["attrs"]

    def test_step_times_bounded_by_run_duration(self, small_trace):
        events = self._capture(lambda: ExecutionEngine(
            use_cache=False, track_memory=False
        ).run(Pipeline.from_template(TEMPLATE), small_trace))
        run = next(e for e in events if e["name"] == "run")
        step_total = sum(
            e["attrs"]["wall_seconds"] for e in events
            if e["kind"] == "span" and e["name"].startswith("step:")
        )
        assert 0 < step_total <= run["duration_seconds"]

    def test_metrics_after_cached_rerun(self, small_trace):
        from repro.obs import METRICS
        from repro.obs import metrics as metric_names

        engine = ExecutionEngine(track_memory=False)
        pipeline = Pipeline.from_template(TEMPLATE)
        engine.run(pipeline, small_trace, outputs=["X", "y"],
                   source_token="t")

        def counts():
            snap = METRICS.snapshot()
            return (snap.get(metric_names.CACHE_HITS, 0),
                    snap.get(metric_names.STEPS_EXECUTED, 0))

        hits_before, executed_before = counts()
        engine.run(pipeline, small_trace, outputs=["X", "y"],
                   source_token="t")
        hits_after, executed_after = counts()
        # second run: every cacheable step is a hit, nothing re-executes
        assert hits_after - hits_before >= len(TEMPLATE)
        assert executed_after == executed_before
        assert all(p.cached for p in engine.last_report.profiles)

    def test_cache_events_emitted(self, small_trace):
        events = self._capture(lambda: ExecutionEngine(
            track_memory=False
        ).run(Pipeline.from_template(TEMPLATE), small_trace,
              source_token="fresh-events"))
        names = {e["name"] for e in events if e["kind"] == "event"}
        assert "cache.miss" in names

    def test_profile_is_a_view_over_spans(self, small_trace):
        from repro.core.profiling import OperationProfile

        events = []
        engine = ExecutionEngine(use_cache=False, track_memory=False)

        def run():
            events.extend(self._capture(lambda: engine.run(
                Pipeline.from_template(TEMPLATE), small_trace)))

        run()
        step_spans = [e for e in events if e["name"].startswith("step:")]
        assert len(step_spans) == len(engine.last_report.profiles)
        for span_event, profile in zip(step_spans,
                                       engine.last_report.profiles):
            assert span_event["attrs"]["operation"] == profile.operation
            assert span_event["attrs"]["wall_seconds"] == profile.wall_seconds
        assert isinstance(engine.last_report.profiles[0], OperationProfile)

    def test_hotspots_tie_break_is_deterministic(self):
        from repro.core.profiling import OperationProfile, ProfileReport

        report = ProfileReport(profiles=[
            OperationProfile(step=2, operation="b", output_name="b",
                             wall_seconds=0.0, peak_memory_bytes=0),
            OperationProfile(step=0, operation="a", output_name="a",
                             wall_seconds=0.0, peak_memory_bytes=0),
            OperationProfile(step=1, operation="c", output_name="c",
                             wall_seconds=1.0, peak_memory_bytes=0),
        ])
        assert [p.step for p in report.hotspots(top=3)] == [1, 0, 2]

    def test_render_uses_human_units(self):
        from repro.core.profiling import OperationProfile, ProfileReport

        report = ProfileReport(profiles=[
            OperationProfile(step=0, operation="op", output_name="x",
                             wall_seconds=0.1,
                             peak_memory_bytes=3 * 1024 * 1024),
        ])
        rendered = report.render()
        assert "3.0 MiB" in rendered
        assert "peak 3.0 MiB" in rendered

    def test_thread_safe_cache_under_parallel_load(self, small_trace):
        """Hammer one cache from many engines; counters stay consistent."""
        from concurrent.futures import ThreadPoolExecutor

        cache = ExecutionEngine.shared_cache
        pipeline = Pipeline.from_template(TEMPLATE)

        def run(_):
            ExecutionEngine(parallel=True, max_workers=4,
                            track_memory=False).run(
                pipeline, small_trace, outputs=["X", "y"], source_token="t")

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(run, range(8)))
        lookups = cache.hits + cache.misses
        # every run looks up each of the 3 cacheable outputs exactly once
        assert lookups == 8 * len(TEMPLATE)


class TestDiskCache:
    def test_arrays_survive_a_fresh_cache(self, small_trace, tmp_path):
        from repro.core.engine import _ResultCache

        pipeline = Pipeline.from_template(TEMPLATE)
        first_cache = _ResultCache(disk_dir=str(tmp_path))
        engine = ExecutionEngine(track_memory=False)
        old_cache = ExecutionEngine.shared_cache
        try:
            ExecutionEngine.shared_cache = first_cache
            first = engine.run(pipeline, small_trace, outputs=["X"],
                               source_token="t")
            # simulate a new process: fresh in-memory cache, same dir
            ExecutionEngine.shared_cache = _ResultCache(disk_dir=str(tmp_path))
            second = engine.run(pipeline, small_trace, outputs=["X"],
                                source_token="t")
            assert ExecutionEngine.shared_cache.disk_hits >= 1
            assert np.array_equal(first["X"], second["X"])
        finally:
            ExecutionEngine.shared_cache = old_cache

    def test_disk_files_are_arrays_only(self, small_trace, tmp_path):
        from repro.core.engine import _ResultCache

        old_cache = ExecutionEngine.shared_cache
        try:
            ExecutionEngine.shared_cache = _ResultCache(disk_dir=str(tmp_path))
            engine = ExecutionEngine(track_memory=False)
            engine.run(Pipeline.from_template(TEMPLATE), small_trace,
                       outputs=["X"], source_token="t")
            files = list(tmp_path.glob("*.npz"))
            # X and y persist; the FlowTable intermediate does not
            assert 1 <= len(files) <= 3
        finally:
            ExecutionEngine.shared_cache = old_cache

    def test_corrupt_disk_entry_is_ignored(self, small_trace, tmp_path):
        from repro.core.engine import _ResultCache

        old_cache = ExecutionEngine.shared_cache
        try:
            ExecutionEngine.shared_cache = _ResultCache(disk_dir=str(tmp_path))
            engine = ExecutionEngine(track_memory=False)
            pipeline = Pipeline.from_template(TEMPLATE)
            engine.run(pipeline, small_trace, outputs=["X"], source_token="t")
            for path in tmp_path.glob("*.npz"):
                path.write_bytes(b"not a real npz file")
            ExecutionEngine.shared_cache = _ResultCache(disk_dir=str(tmp_path))
            out = engine.run(pipeline, small_trace, outputs=["X"],
                             source_token="t")
            assert len(out["X"]) > 0  # recomputed, no crash
        finally:
            ExecutionEngine.shared_cache = old_cache
