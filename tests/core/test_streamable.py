"""Tests for the streaming-safety analyzer and the chunked engine mode.

Covers the incrementality classifier and state-bound inference, the
carried-state growth/eviction audit shared with astlint AL010, the
registry-facing reports with the L041-L048 diagnostics (positive and
negative cases via fixture operations), the full-registry audit
regression, the template-level pass (L046), and ``Engine.run_stream``:
byte-equality with batch execution across chunk sizes and the visible
refusal of anything unproven.
"""

import ast
import json
import textwrap

import numpy as np
import pytest

from repro.analysis import analyze_template
from repro.analysis.streamable import (
    BATCH_ONLY,
    BOUND_ORDER,
    PREFIX_MERGEABLE,
    STATELESS,
    STREAMABLE_VERDICTS,
    WINDOW_BOUNDED,
    audit_streamable,
    classify_stream,
    infer_state_bound,
    operation_stream_report,
    stream_state_audit,
)
from repro.analysis.vectorize import analyze_rows
from repro.core import ExecutionEngine, Pipeline
from repro.core.engine import _carried_state_bytes
from repro.core.errors import TemplateError
from repro.core.operations import (
    OPERATIONS,
    register_operation,
    register_stream,
)
from repro.core.types import ValueType
from repro.obs import METRICS, RingBufferSink, get_tracer
from repro.obs import metrics as metric_names


def findings_of(source, name="op"):
    tree = ast.parse(textwrap.dedent(source))
    node = next(
        n for n in ast.walk(tree)
        if isinstance(n, ast.FunctionDef) and n.name == name
    )
    return analyze_rows(node)


def body_of(source, name="op"):
    tree = ast.parse(textwrap.dedent(source))
    return next(
        n for n in ast.walk(tree)
        if isinstance(n, ast.FunctionDef) and n.name == name
    )


@pytest.fixture
def scratch_ops():
    """Register fixture operations for one test; unregister after."""
    registered = []

    def add(name, fn, *, inputs=(ValueType.PACKETS,),
            output=ValueType.FEATURES, stream_fn=None, **kwargs):
        register_operation(name, inputs, output, **kwargs)(fn)
        registered.append(name)
        if stream_fn is not None:
            register_stream(name)(stream_fn)
        return OPERATIONS[name]

    yield add
    for name in registered:
        OPERATIONS.pop(name, None)


class TestClassifier:
    def test_scalar_domain_is_stateless(self):
        assert classify_stream([], ("any",), "model") == STATELESS

    def test_clean_featurizer_is_stateless(self):
        assert classify_stream([], ("packets",), "features") == STATELESS

    def test_whole_input_reduction_is_batch_only(self):
        verdict = classify_stream([], ("features", "labels"), "model")
        assert verdict == BATCH_ONLY

    def test_global_sort_is_batch_only(self):
        findings = findings_of(
            """
            import numpy as np

            def op(inputs, params):
                order = np.argsort(inputs[0].ts)
                return inputs[0].length[order]
            """
        )
        assert classify_stream(findings, ("packets",), "packets") == BATCH_ONLY

    def test_flow_consumer_is_window_bounded(self):
        assert (
            classify_stream([], ("flows",), "features") == WINDOW_BOUNDED
        )

    def test_window_bounded_wins_over_prefix_markers(self):
        # TimeSlice-like: loop-carried state over an already
        # window-bounded flow table stays window-bounded
        findings = findings_of(
            """
            def op(inputs, params):
                total = 0.0
                for count in inputs[0].counts:
                    total += count
                return inputs[0]
            """
        )
        verdict = classify_stream(findings, ("flows",), "flows")
        assert verdict == WINDOW_BOUNDED

    def test_prefix_scan_is_prefix_mergeable(self):
        findings = findings_of(
            """
            import numpy as np

            def op(inputs, params):
                return np.cumsum(inputs[0].length).reshape(-1, 1)
            """
        )
        verdict = classify_stream(findings, ("packets",), "features")
        assert verdict == PREFIX_MERGEABLE

    def test_streamable_verdicts_exclude_batch_only(self):
        assert BATCH_ONLY not in STREAMABLE_VERDICTS
        assert STREAMABLE_VERDICTS == {
            STATELESS, PREFIX_MERGEABLE, WINDOW_BOUNDED
        }


class TestStateBounds:
    def test_stateless_is_constant(self):
        assert infer_state_bound(STATELESS, []) == "O(1)"

    def test_window_bounded_is_window(self):
        assert infer_state_bound(WINDOW_BOUNDED, []) == "O(window)"

    def test_batch_only_is_whole_trace(self):
        assert infer_state_bound(BATCH_ONLY, []) == "O(n)"

    def test_grouped_prefix_state_is_per_flow(self):
        findings = findings_of(
            """
            def op(inputs, params):
                return kitsune_packet_features(inputs[0], params["lambdas"])
            """
        )
        assert infer_state_bound(PREFIX_MERGEABLE, findings) == "O(flows)"

    def test_row_accumulator_never_folds(self):
        findings = findings_of(
            """
            def op(inputs, params):
                seen = []
                for row in inputs[0]:
                    seen.append(row)
                return seen
            """
        )
        assert infer_state_bound(PREFIX_MERGEABLE, findings) == "O(n)"

    def test_bound_order_is_total(self):
        assert (
            BOUND_ORDER["O(1)"] < BOUND_ORDER["O(window)"]
            < BOUND_ORDER["O(flows)"] < BOUND_ORDER["O(n)"]
        )


class TestStateAudit:
    def test_growth_without_eviction(self):
        audit = stream_state_audit(
            body_of(
                """
                def op(inputs, params, state):
                    rows = state.setdefault("rows", [])
                    rows.append(inputs[0])
                    return inputs[0]
                """
            ),
            {"state"},
        )
        assert audit["growth"]
        assert audit["eviction"] == []

    def test_fixed_key_slot_is_not_growth(self):
        audit = stream_state_audit(
            body_of(
                """
                def op(inputs, params, state):
                    ks = state.get("kitsune")
                    if ks is None:
                        ks = object()
                        state["kitsune"] = ks
                    return ks
                """
            ),
            {"state"},
        )
        assert audit["growth"] == []

    def test_per_key_subscript_is_growth(self):
        audit = stream_state_audit(
            body_of(
                """
                def op(inputs, params, state):
                    for key in inputs[0]:
                        state[key] = 1
                """
            ),
            {"state"},
        )
        assert audit["growth"]

    def test_del_and_shrink_count_as_eviction(self):
        audit = stream_state_audit(
            body_of(
                """
                def op(inputs, params, state):
                    state[inputs[0]] = 1
                    del state[inputs[0]]
                    state.pop("x", None)
                """
            ),
            {"state"},
        )
        assert len(audit["eviction"]) == 2

    def test_eviction_name_hint_counts(self):
        audit = stream_state_audit(
            body_of(
                """
                def process_chunk(self, chunk):
                    self._seen[chunk.key] = chunk
                    self._evict_expired(chunk.ts)
                """,
                name="process_chunk",
            ),
            {"self"},
        )
        assert audit["growth"]
        assert audit["eviction"]

    def test_carrier_aliases_are_followed(self):
        audit = stream_state_audit(
            body_of(
                """
                def op(inputs, params, state):
                    buffers = state.setdefault("buffers", {})
                    queue = buffers.setdefault("q", [])
                    queue.append(inputs[0])
                """
            ),
            {"state"},
        )
        # state -> buffers -> queue all count as carriers
        details = [detail for _, detail in audit["growth"]]
        assert any("queue.append" in detail for detail in details)


def _clean_stream(inputs, params, state):
    return inputs[0]


def _leaky_stream(inputs, params, state):
    rows = state.setdefault("rows", [])
    rows.append(inputs[0])
    return inputs[0]


class TestOperationReports:
    def test_l042_whole_trace_reduction_under_stream_declaration(
        self, scratch_ops
    ):
        def scalar(inputs, params):
            mu = inputs[0].length.mean()
            return (inputs[0].length - mu).reshape(-1, 1)

        operation = scratch_ops(
            "StreamMeanFixture", scalar, stream="stateless"
        )
        report = operation_stream_report(operation)
        assert "L042" in report.codes()
        assert not report.streamable

    def test_l045_declaration_drift(self, scratch_ops):
        def scalar(inputs, params):
            order = np.argsort(inputs[0].ts)
            return inputs[0].length[order].astype(
                np.float64
            ).reshape(-1, 1)

        operation = scratch_ops(
            "StreamDriftFixture", scalar, stream="stateless"
        )
        report = operation_stream_report(operation)
        assert report.verdict == BATCH_ONLY
        assert "L045" in report.codes()
        assert report.refusal == f"verdict:{BATCH_ONLY}"

    def test_l041_unbounded_state_under_tight_budget(self, scratch_ops):
        def scalar(inputs, params):
            return inputs[0].length.astype(np.float64).reshape(-1, 1)

        operation = scratch_ops(
            "StreamLeakFixture", scalar, stream="stateless",
            state_bound="O(1)", stream_fn=_leaky_stream,
        )
        report = operation_stream_report(operation)
        assert "L041" in report.codes()
        assert report.refusal == "diagnostics:L041"

    def test_l041_absent_for_clean_stream_body(self, scratch_ops):
        def scalar(inputs, params):
            return inputs[0].length.astype(np.float64).reshape(-1, 1)

        operation = scratch_ops(
            "StreamCleanFixture", scalar, stream="stateless",
            state_bound="O(1)", stream_fn=_clean_stream,
        )
        report = operation_stream_report(operation)
        assert report.codes() == set()
        assert report.streamable

    def test_l047_eviction_free_flow_buffer(self, scratch_ops):
        def scalar(inputs, params):
            return inputs[0]

        operation = scratch_ops(
            "StreamBufferFixture", scalar,
            inputs=(ValueType.FLOWS,), output=ValueType.FLOWS,
            optional_params={"timeout": 60.0},
            stream="window-bounded", state_bound="O(window)",
            stream_fn=_leaky_stream,
        )
        report = operation_stream_report(operation)
        assert "L047" in report.codes()
        assert report.refusal == "diagnostics:L047"

    def test_l048_state_budget_exceeded(self, scratch_ops):
        def scalar(inputs, params):
            return kitsune_packet_features(  # noqa: F821 -- marker only
                inputs[0], params
            )

        operation = scratch_ops(
            "StreamBudgetFixture", scalar,
            stream="prefix-mergeable", state_bound="O(1)",
        )
        report = operation_stream_report(operation)
        assert report.verdict == PREFIX_MERGEABLE
        assert report.state_bound == "O(flows)"
        assert "L048" in report.codes()
        assert report.refusal == "diagnostics:L048"

    def test_l043_window_not_derivable(self, scratch_ops):
        def scalar(inputs, params):
            return inputs[0]

        operation = scratch_ops(
            "StreamNoWindowFixture", scalar,
            inputs=(ValueType.FLOWS,), output=ValueType.FLOWS,
            stream="window-bounded", state_bound="O(window)",
        )
        report = operation_stream_report(operation)
        assert "L043" in report.codes()
        assert report.window_derivable is False
        # a warning, not an error: the refusal is the missing body
        assert report.refusal == "no-stream-implementation"

    def test_l043_silenced_by_timeout_param(self, scratch_ops):
        def scalar(inputs, params):
            return inputs[0]

        operation = scratch_ops(
            "StreamWindowedFixture", scalar,
            inputs=(ValueType.FLOWS,), output=ValueType.FLOWS,
            optional_params={"timeout": 60.0},
            stream="window-bounded", state_bound="O(window)",
        )
        report = operation_stream_report(operation)
        assert "L043" not in report.codes()
        assert report.window_derivable is True

    def test_l044_order_sensitivity_without_sort_key(self, scratch_ops):
        def scalar(inputs, params):
            return np.cumsum(
                inputs[0].length.astype(np.float64)
            ).reshape(-1, 1)

        operation = scratch_ops("StreamUnsortedFixture", scalar)
        report = operation_stream_report(operation)
        assert report.verdict == PREFIX_MERGEABLE
        assert "L044" in report.codes()

    def test_l044_silenced_by_sort_key(self, scratch_ops):
        def scalar(inputs, params):
            return np.cumsum(
                inputs[0].length.astype(np.float64)
            ).reshape(-1, 1)

        operation = scratch_ops(
            "StreamSortedFixture", scalar, sort_key="ts"
        )
        report = operation_stream_report(operation)
        assert "L044" not in report.codes()

    def test_stateless_streams_without_a_body(self, scratch_ops):
        def scalar(inputs, params):
            return inputs[0].length.astype(np.float64).reshape(-1, 1)

        operation = scratch_ops("StreamPlainFixture", scalar)
        report = operation_stream_report(operation)
        assert report.verdict == STATELESS
        assert report.streamable
        assert report.has_stream_fn is False

    def test_stateful_verdict_needs_a_body(self, scratch_ops):
        def scalar(inputs, params):
            return np.cumsum(
                inputs[0].length.astype(np.float64)
            ).reshape(-1, 1)

        operation = scratch_ops(
            "StreamBodylessFixture", scalar, sort_key="ts"
        )
        report = operation_stream_report(operation)
        assert report.refusal == "no-stream-implementation"

    def test_report_serializes(self, scratch_ops):
        def scalar(inputs, params):
            return inputs[0].length.astype(np.float64).reshape(-1, 1)

        operation = scratch_ops("StreamSerializeFixture", scalar)
        payload = operation_stream_report(operation).to_dict()
        assert payload["operation"] == "StreamSerializeFixture"
        assert payload["verdict"] == STATELESS
        assert payload["state_bound"] == "O(1)"
        assert payload["streamable"] is True
        assert payload["refusal"] is None


class TestRegistryAudit:
    def test_audit_covers_every_operation(self):
        audit = audit_streamable()
        names = [entry["operation"] for entry in audit["operations"]]
        assert names == sorted(OPERATIONS)
        assert audit["summary"]["total"] == len(OPERATIONS)

    def test_no_stock_operation_errors_or_is_opaque(self):
        audit = audit_streamable()
        assert audit["summary"]["errors"] == 0
        assert audit["summary"]["opaque"] == 0

    def test_summary_counts_are_consistent(self):
        summary = audit_streamable()["summary"]
        assert (
            summary["stateless"] + summary["prefix_mergeable"]
            + summary["window_bounded"] + summary["batch_only"]
            + summary["opaque"]
        ) == summary["total"]

    def test_known_verdicts(self):
        by_name = {
            entry["operation"]: entry
            for entry in audit_streamable()["operations"]
        }
        assert by_name["KitsuneFeatures"]["verdict"] == PREFIX_MERGEABLE
        assert by_name["KitsuneFeatures"]["state_bound"] == "O(flows)"
        assert by_name["Labels"]["verdict"] == STATELESS
        assert by_name["Groupby"]["verdict"] == WINDOW_BOUNDED
        assert by_name["Groupby"]["window_derivable"] is True
        for name in ("Downsample", "SortByTime", "Normalize", "train"):
            assert by_name[name]["verdict"] == BATCH_ONLY, name
            assert by_name[name]["refusal"] == f"verdict:{BATCH_ONLY}"

    def test_at_least_three_ops_are_converted(self):
        converted = {
            entry["operation"]
            for entry in audit_streamable()["operations"]
            if entry["stream_fn"]
        }
        assert converted >= {
            "KitsuneFeatures", "NprintEncode", "PacketFields",
            "ProtocolOneHot",
        }
        for entry in audit_streamable()["operations"]:
            if entry["stream_fn"]:
                assert entry["streamable"], entry["operation"]

    def test_audit_is_byte_deterministic(self):
        first = json.dumps(audit_streamable(), sort_keys=True)
        second = json.dumps(audit_streamable(), sort_keys=True)
        assert first == second


class TestTemplatePass:
    def test_l046_batch_only_step_pins_streamable_template(self):
        template = [
            {"func": "Downsample", "input": None, "output": "sampled",
             "max_packets": 100, "seed": 1},
            {"func": "ProtocolOneHot", "input": ["sampled"],
             "output": "X"},
        ]
        result = analyze_template(template, outputs=["X"])
        assert "L046" in result.codes()
        assert result.ok  # warning only: batch execution stays valid

    def test_no_l046_without_a_streamable_stage(self):
        template = [
            {"func": "Downsample", "input": None, "output": "sampled",
             "max_packets": 100, "seed": 1},
        ]
        result = analyze_template(template, outputs=["sampled"])
        assert "L046" not in result.codes()

    def test_no_l046_for_learning_tail_steps(self):
        # train/evaluate are batch-only by construction; they must not
        # pin the feature pipeline (streaming scores a fitted model)
        template = [
            {"func": "ProtocolOneHot", "input": None, "output": "X"},
            {"func": "Labels", "input": None, "output": "y"},
            {"func": "model", "input": [], "output": "m",
             "model_type": "if"},
            {"func": "train", "input": ["m", "X", "y"], "output": "fit"},
        ]
        result = analyze_template(template, outputs=["fit"])
        assert "L046" not in result.codes()

    def test_stock_catalog_has_no_streaming_errors(self):
        from repro.algorithms import ALGORITHMS

        for algorithm_id in sorted(ALGORITHMS):
            spec = ALGORITHMS[algorithm_id]
            result = analyze_template(
                spec.full_template(), outputs=["metrics"]
            )
            error_codes = result.codes() & {
                "L041", "L042", "L045", "L047", "L048"
            }
            assert error_codes == set(), (algorithm_id, error_codes)


STREAM_TEMPLATE = [
    {"func": "KitsuneFeatures", "input": None, "output": "X",
     "lambdas": [1.0, 0.1]},
    {"func": "Labels", "input": None, "output": "y"},
]


def capture(fn):
    sink = RingBufferSink(capacity=None)
    tracer = get_tracer()
    tracer.add_sink(sink)
    try:
        fn()
    finally:
        tracer.remove_sink(sink)
    return [e for e in sink.events() if e.get("kind") == "span"]


class TestRunStream:
    @pytest.mark.parametrize("chunk_seconds", [0.5, 5.0, 1e6])
    def test_stream_equals_batch(self, small_trace, chunk_seconds):
        engine = ExecutionEngine(use_cache=False, track_memory=False)
        pipeline = Pipeline.from_template(STREAM_TEMPLATE)
        batch = engine.run(
            pipeline, small_trace.sort_by_time(), outputs=["X", "y"]
        )
        streamed = engine.run_stream(
            pipeline, small_trace,
            chunk_seconds=chunk_seconds, outputs=["X", "y"],
        )
        assert np.array_equal(batch["X"], streamed["X"])
        assert np.array_equal(batch["y"], streamed["y"])

    def test_refuses_batch_only_step(self, small_trace):
        engine = ExecutionEngine(use_cache=False, track_memory=False)
        pipeline = Pipeline.from_template(
            [
                {"func": "Downsample", "input": None, "output": "s",
                 "max_packets": 100, "seed": 1},
                {"func": "ProtocolOneHot", "input": ["s"], "output": "X"},
            ]
        )
        before = METRICS.counter(
            metric_names.STREAM_REFUSALS, ""
        ).value
        spans = []

        def attempt():
            with pytest.raises(TemplateError, match="not proven"):
                engine.run_stream(
                    pipeline, small_trace,
                    chunk_seconds=10.0, outputs=["X"],
                )

        spans = capture(attempt)
        run = next(s for s in spans if s["name"] == "run_stream")
        assert "Downsample:verdict:batch-only" in (
            run["attrs"]["stream_refused"]
        )
        after = METRICS.counter(metric_names.STREAM_REFUSALS, "").value
        assert after == before + 1

    def test_refuses_stateful_step_without_body(self, small_trace):
        engine = ExecutionEngine(use_cache=False, track_memory=False)
        pipeline = Pipeline.from_template(
            [
                {"func": "Groupby", "input": None, "output": "flows",
                 "flowid": ["connection"]},
                {"func": "PropagateLabels", "input": ["flows"],
                 "output": "y"},
            ]
        )
        with pytest.raises(TemplateError, match="no-stream-implementation"):
            engine.run_stream(
                pipeline, small_trace, chunk_seconds=10.0, outputs=["y"]
            )

    def test_spans_carry_chunk_and_state_attrs(self, small_trace):
        engine = ExecutionEngine(use_cache=False, track_memory=False)
        pipeline = Pipeline.from_template(STREAM_TEMPLATE)
        spans = capture(
            lambda: engine.run_stream(
                pipeline, small_trace,
                chunk_seconds=10.0, outputs=["X", "y"],
            )
        )
        run = next(s for s in spans if s["name"] == "run_stream")
        chunks = [s for s in spans if s["name"] == "stream_chunk"]
        assert run["attrs"]["chunks"] == len(chunks) > 1
        assert "stream_refused" not in run["attrs"]
        for index, span in enumerate(chunks):
            assert span["attrs"]["chunk"] == index
            # KitsuneFeatures carries per-flow IncStats across chunks
            assert span["attrs"]["state_bytes"] > 0

    def test_steps_counter_increments(self, small_trace):
        engine = ExecutionEngine(use_cache=False, track_memory=False)
        pipeline = Pipeline.from_template(STREAM_TEMPLATE)
        before = METRICS.counter(metric_names.STREAM_STEPS, "").value
        engine.run_stream(
            pipeline, small_trace, chunk_seconds=10.0, outputs=["y"]
        )
        after = METRICS.counter(metric_names.STREAM_STEPS, "").value
        assert after > before

    def test_empty_source_raises(self):
        from repro.net.table import PacketTable

        engine = ExecutionEngine(use_cache=False, track_memory=False)
        pipeline = Pipeline.from_template(STREAM_TEMPLATE)
        with pytest.raises(TemplateError, match="non-empty"):
            engine.run_stream(
                pipeline, PacketTable.empty(),
                chunk_seconds=10.0, outputs=["y"],
            )

    def test_carried_state_bytes_handles_cycles(self):
        state = {"x": np.zeros(16)}
        state["self"] = state  # cycle must not recurse forever
        measured = _carried_state_bytes({0: state})
        assert measured >= state["x"].nbytes
