"""Batched operation implementations and the engine's verdict gating.

The ``batch=`` contract is byte-equality: for every converted stock
operation the batched body must produce ``tobytes()``-identical output
on real traffic.  The engine half: batched execution is selected only
when the analyzer approves, the choice is visible in span attributes
and counters, and results are unchanged under ``max_workers>1``.
"""

import numpy as np
import pytest

from repro.analysis.vectorize import operation_vector_report
from repro.core import ExecutionEngine, Pipeline
from repro.core.operations import (
    OPERATIONS,
    register_batch,
    register_operation,
)
from repro.core.types import ValueType
from repro.flows import assemble_connections
from repro.obs import METRICS, RingBufferSink, get_tracer
from repro.obs import metrics as metric_names

#: operations converted to batch execution in this repo
CONVERTED = [
    "DeviceLabels",
    "FirstNPackets",
    "NprintEncode",
    "ProtocolOneHot",
    "WlanFeatures",
]


@pytest.fixture
def scratch_ops():
    registered = []

    def add(name, fn, *, inputs=(ValueType.PACKETS,),
            output=ValueType.FEATURES, batch=None):
        register_operation(name, inputs, output)(fn)
        registered.append(name)
        if batch is not None:
            register_batch(name)(batch)
        return OPERATIONS[name]

    yield add
    for name in registered:
        OPERATIONS.pop(name, None)


def _with_payloads(table, payload_bytes=6):
    """A copy of ``table`` carrying deterministic synthetic payloads."""
    table = table.select(np.arange(len(table)))
    rng = np.random.default_rng(7)
    sizes = np.minimum(table.payload_len, payload_bytes).astype(np.int64)
    blob = rng.integers(0, 256, size=int(sizes.sum()), dtype=np.uint8)
    payloads, offset = [], 0
    for size in sizes:
        payloads.append(bytes(blob[offset:offset + size]))
        offset += size
    table.payloads = payloads
    return table


def _run_both(name, inputs, params):
    operation = OPERATIONS[name]
    params = operation.validate_params(params)
    scalar = operation.fn(inputs, params)
    batch = operation.batch(inputs, params)
    return scalar, batch


def _assert_byte_equal(scalar, batch):
    assert scalar.shape == batch.shape
    assert scalar.dtype == batch.dtype
    assert scalar.tobytes() == batch.tobytes()


class TestByteEquality:
    def test_protocol_one_hot(self, small_trace):
        _assert_byte_equal(*_run_both("ProtocolOneHot", [small_trace], {}))

    def test_wlan_features(self, small_trace):
        _assert_byte_equal(*_run_both("WlanFeatures", [small_trace], {}))

    def test_device_labels(self, small_trace):
        unique = np.unique(small_trace.src_ip)
        device_map = {
            str(int(ip)): i % 3 for i, ip in enumerate(unique[:16])
        }
        _assert_byte_equal(*_run_both(
            "DeviceLabels", [small_trace], {"device_map": device_map}
        ))

    def test_nprint_headers_only(self, small_trace):
        _assert_byte_equal(*_run_both(
            "NprintEncode", [small_trace],
            {"layers": ["ipv4", "tcp", "udp", "icmp"]},
        ))

    def test_nprint_with_payload(self, small_trace):
        table = _with_payloads(small_trace)
        for payload_bytes in (4, 8):
            _assert_byte_equal(*_run_both(
                "NprintEncode", [table],
                {"layers": ["ipv4", "tcp", "payload"],
                 "payload_bytes": payload_bytes},
            ))

    def test_nprint_payload_layer_without_payload_data(self, small_trace):
        # payloads=None delegates to the scalar body: trivially equal
        _assert_byte_equal(*_run_both(
            "NprintEncode", [small_trace],
            {"layers": ["ipv4", "payload"], "payload_bytes": 4},
        ))

    def test_first_n_packets(self, small_trace):
        flows = assemble_connections(small_trace)
        _assert_byte_equal(*_run_both("FirstNPackets", [flows], {}))
        _assert_byte_equal(*_run_both(
            "FirstNPackets", [flows],
            {"n": 5, "include_iat": False},
        ))

    def test_every_converted_op_is_analyzer_approved(self):
        for name in CONVERTED:
            report = operation_vector_report(OPERATIONS[name])
            assert report.batchable, (name, report.refusal)


class TestRegisterBatch:
    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError, match="not registered"):
            register_batch("NoSuchOperation")(lambda i, p: None)

    def test_duplicate_batch_rejected(self):
        with pytest.raises(ValueError):
            register_batch("ProtocolOneHot")(lambda i, p: None)


def _capture(fn):
    sink = RingBufferSink(capacity=None)
    tracer = get_tracer()
    tracer.add_sink(sink)
    try:
        fn()
    finally:
        tracer.remove_sink(sink)
    return sink.events()


def _step_spans(events, operation=None):
    spans = [
        e for e in events
        if e["kind"] == "span" and e["name"].startswith("step:")
    ]
    if operation is not None:
        spans = [e for e in spans if e["attrs"]["operation"] == operation]
    return spans


TEMPLATE = [
    {"func": "ProtocolOneHot", "input": None, "output": "X"},
    {"func": "WlanFeatures", "input": None, "output": "W"},
    {"func": "Labels", "input": None, "output": "y"},
]


def _engine(**kwargs):
    return ExecutionEngine(
        use_cache=False, parallel=True, max_workers=4,
        track_memory=False, **kwargs,
    )


class TestEngineGating:
    def test_vectorized_matches_scalar_under_parallelism(
        self, small_trace
    ):
        pipeline = Pipeline.from_template(TEMPLATE)
        outputs = ["X", "W", "y"]
        scalar = _engine(vectorize=False).run(
            pipeline, small_trace, outputs=outputs
        )
        batched = _engine(vectorize=True).run(
            pipeline, small_trace, outputs=outputs
        )
        for name in outputs:
            assert scalar[name].tobytes() == batched[name].tobytes()

    def test_approved_steps_carry_vectorized_attr(self, small_trace):
        events = _capture(
            lambda: _engine().run(
                Pipeline.from_template(TEMPLATE), small_trace,
                outputs=["X", "W", "y"],
            )
        )
        for name in ("ProtocolOneHot", "WlanFeatures"):
            (span,) = _step_spans(events, name)
            assert span["attrs"]["vectorized"] is True
        # Labels declares no batch=: neither attribute appears
        (labels,) = _step_spans(events, "Labels")
        assert "vectorized" not in labels["attrs"]
        assert "vector_refused" not in labels["attrs"]

    def test_vectorize_off_disables_the_batch_path(self, small_trace):
        events = _capture(
            lambda: _engine(vectorize=False).run(
                Pipeline.from_template(TEMPLATE), small_trace,
                outputs=["X", "W", "y"],
            )
        )
        for span in _step_spans(events):
            assert "vectorized" not in span["attrs"]

    def test_verdict_refusal_is_visible(self, scratch_ops, small_trace):
        def scalar(inputs, params):
            order = np.argsort(inputs[0].ts)
            return inputs[0].length[order].astype(
                np.float64
            ).reshape(-1, 1)

        scratch_ops("RefusedFixture", scalar, batch=scalar)
        template = [
            {"func": "RefusedFixture", "input": None, "output": "X"},
        ]
        events = _capture(
            lambda: _engine().run(
                Pipeline.from_template(template), small_trace,
                outputs=["X"],
            )
        )
        (span,) = _step_spans(events, "RefusedFixture")
        assert span["attrs"]["vector_refused"].startswith("verdict:")
        assert "vectorized" not in span["attrs"]

    def test_runtime_object_dtype_refusal(self, scratch_ops, small_trace):
        def produce_object(inputs, params):
            out = np.empty((len(inputs[0]), 1), dtype=object)
            out[:] = 1.0
            return out

        def identity(inputs, params):
            return inputs[0]

        scratch_ops("ObjectSourceFixture", produce_object)
        scratch_ops(
            "IdentityFixture", identity,
            inputs=(ValueType.FEATURES,), batch=identity,
        )
        template = [
            {"func": "ObjectSourceFixture", "input": None, "output": "o"},
            {"func": "IdentityFixture", "input": ["o"], "output": "X"},
        ]
        events = _capture(
            lambda: _engine().run(
                Pipeline.from_template(template), small_trace,
                outputs=["X"],
            )
        )
        (span,) = _step_spans(events, "IdentityFixture")
        assert span["attrs"]["vector_refused"] == "object-dtype-input"

    def test_counters_increment(self, scratch_ops, small_trace):
        def scalar(inputs, params):
            order = np.argsort(inputs[0].ts)
            return inputs[0].length[order].astype(
                np.float64
            ).reshape(-1, 1)

        scratch_ops("CountedRefusalFixture", scalar, batch=scalar)
        template = TEMPLATE + [
            {"func": "CountedRefusalFixture", "input": None,
             "output": "R"},
        ]
        vectorized = METRICS.counter(metric_names.VECTORIZED_STEPS)
        refused = METRICS.counter(metric_names.VECTOR_REFUSALS)
        before = (vectorized.value, refused.value)
        _engine().run(
            Pipeline.from_template(template), small_trace,
            outputs=["X", "W", "y", "R"],
        )
        assert vectorized.value == before[0] + 2
        assert refused.value == before[1] + 1
