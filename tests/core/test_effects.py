"""Tests for the implementation-level effect/purity analyzer.

Covers the AST layer (repro.analysis.effects) with fixture sources for
every purity class, the false-positive guards that keep the stock
catalog clean, and the registry-facing layer (repro.analysis.safety):
diagnostics mapping, closure detection, lambda fallback, and the
regression guarantee that every stock operation audits pure/seeded.
"""

import ast
import textwrap

from repro.analysis import effects
from repro.analysis.effects import (
    IO,
    PURE,
    SEEDED,
    STATEFUL,
    EffectKind,
    analyze_function,
    collect_module_context,
)
from repro.analysis.safety import (
    audit_registry,
    function_effects,
    operation_report,
)
from repro.core.operations import OPERATIONS


def effects_of(source, name="op"):
    """Analyze function ``name`` inside a module source string."""
    tree = ast.parse(textwrap.dedent(source))
    ctx = collect_module_context(tree)
    node = next(
        n for n in ast.walk(tree)
        if isinstance(n, ast.FunctionDef) and n.name == name
    )
    return analyze_function(node, module=ctx)


class TestPureOperations:
    def test_fresh_allocation_and_local_mutation_is_pure(self):
        fx = effects_of(
            """
            import numpy as np

            def op(inputs, params):
                out = np.zeros((len(inputs[0]), 4))
                out[:, 0] = 1.0
                out += 2.0
                return out
            """
        )
        assert fx.purity == PURE
        assert fx.findings == []

    def test_local_copy_then_mutate_is_pure(self):
        fx = effects_of(
            """
            def op(inputs, params):
                x = inputs[0].copy()
                x.sort()
                x[0] = -1
                return x
            """
        )
        assert fx.purity == PURE

    def test_call_result_is_fresh(self):
        # np.diff returns a new array: mutating it must not taint inputs
        fx = effects_of(
            """
            import numpy as np

            def op(inputs, params):
                gaps = np.diff(inputs[0].ts, prepend=0.0)
                gaps[inputs[0].starts] = 0.0
                return gaps
            """
        )
        assert fx.purity == PURE

    def test_local_list_append_is_pure(self):
        fx = effects_of(
            """
            def op(inputs, params):
                columns = []
                for name in params["fields"]:
                    columns.append(name)
                return columns
            """
        )
        assert fx.purity == PURE

    def test_str_partition_on_params_is_pure(self):
        # regression guard: str.partition is not ndarray.partition
        fx = effects_of(
            """
            def op(inputs, params):
                out = []
                for spec in params["aggregates"]:
                    head, _, arg = spec.partition(":")
                    out.append(head)
                return out
            """
        )
        assert fx.purity == PURE

    def test_module_function_call_is_not_receiver_mutation(self):
        # np.sort(x) returns a copy; 'sort' must not match module calls
        fx = effects_of(
            """
            import numpy as np

            def op(inputs, params):
                return np.sort(inputs[0])
            """
        )
        assert fx.purity == PURE

    def test_constant_style_global_read_is_pure(self):
        fx = effects_of(
            """
            TABLE = {"a": 1}

            def op(inputs, params):
                return TABLE["a"]
            """
        )
        assert fx.purity == PURE


class TestInputMutation:
    def test_mutating_method_on_input(self):
        fx = effects_of(
            """
            def op(inputs, params):
                inputs[0].sort()
                return inputs[0]
            """
        )
        assert fx.purity == STATEFUL
        assert EffectKind.MUTATES_INPUT in fx.kinds()

    def test_item_assignment_through_alias(self):
        fx = effects_of(
            """
            def op(inputs, params):
                table = inputs[0]
                table.values[0] = 1
                return table
            """
        )
        assert EffectKind.MUTATES_INPUT in fx.kinds()

    def test_augassign_through_alias(self):
        fx = effects_of(
            """
            def op(inputs, params):
                x = inputs[0]
                x += 1
                return x
            """
        )
        assert EffectKind.MUTATES_INPUT in fx.kinds()

    def test_tuple_unpack_taints_both_names(self):
        fx = effects_of(
            """
            def op(inputs, params):
                left, right = inputs
                left.fill(0)
                return right
            """
        )
        assert EffectKind.MUTATES_INPUT in fx.kinds()

    def test_np_fill_diagonal_on_input(self):
        fx = effects_of(
            """
            import numpy as np

            def op(inputs, params):
                np.fill_diagonal(inputs[0], 0.0)
                return inputs[0]
            """
        )
        assert EffectKind.MUTATES_INPUT in fx.kinds()

    def test_np_fill_diagonal_on_local_is_pure(self):
        fx = effects_of(
            """
            import numpy as np

            def op(inputs, params):
                distance = 1.0 - np.abs(inputs[0])
                np.fill_diagonal(distance, 0.0)
                return distance
            """
        )
        assert fx.purity == PURE

    def test_out_kwarg_aimed_at_input(self):
        fx = effects_of(
            """
            import numpy as np

            def op(inputs, params):
                x = inputs[0]
                np.add(x, 1.0, out=x)
                return x
            """
        )
        assert EffectKind.MUTATES_INPUT in fx.kinds()

    def test_rng_shuffle_mutates_its_argument(self):
        fx = effects_of(
            """
            import numpy as np

            def op(inputs, params):
                rng = np.random.default_rng(params["seed"])
                rng.shuffle(inputs[0])
                return inputs[0]
            """
        )
        assert EffectKind.MUTATES_INPUT in fx.kinds()

    def test_params_item_assignment(self):
        fx = effects_of(
            """
            def op(inputs, params):
                params["cache"] = 1
                return inputs[0]
            """
        )
        assert EffectKind.MUTATES_PARAMS in fx.kinds()
        assert fx.purity == STATEFUL

    def test_params_setdefault(self):
        fx = effects_of(
            """
            def op(inputs, params):
                params.setdefault("limit", 10)
                return inputs[0]
            """
        )
        assert EffectKind.MUTATES_PARAMS in fx.kinds()

    def test_rebound_argument_name_is_fresh(self):
        fx = effects_of(
            """
            def op(inputs, params):
                inputs = list(inputs)
                inputs.append(None)
                return inputs
            """
        )
        assert fx.purity == PURE


class TestGlobalState:
    def test_global_declaration(self):
        fx = effects_of(
            """
            counter = 0

            def op(inputs, params):
                global counter
                counter += 1
                return inputs[0]
            """
        )
        assert EffectKind.WRITES_GLOBAL in fx.kinds()
        assert fx.purity == STATEFUL

    def test_append_to_module_list(self):
        fx = effects_of(
            """
            calls = []

            def op(inputs, params):
                calls.append(1)
                return inputs[0]
            """
        )
        assert EffectKind.WRITES_GLOBAL in fx.kinds()

    def test_read_of_lowercase_mutable_global(self):
        fx = effects_of(
            """
            cache = {}

            def op(inputs, params):
                return cache.get("x")
            """
        )
        assert EffectKind.READS_MUTABLE_GLOBAL in fx.kinds()
        assert fx.purity == STATEFUL

    def test_upper_case_registry_read_is_exempt(self):
        fx = effects_of(
            """
            REGISTRY = {}

            def op(inputs, params):
                return REGISTRY.get("x")
            """
        )
        assert EffectKind.READS_MUTABLE_GLOBAL not in fx.kinds()


class TestRandomness:
    def test_unseeded_default_rng(self):
        fx = effects_of(
            """
            import numpy as np

            def op(inputs, params):
                return np.random.default_rng().normal(size=3)
            """
        )
        assert EffectKind.UNSEEDED_RNG in fx.kinds()
        assert fx.purity == STATEFUL

    def test_legacy_global_rng(self):
        fx = effects_of(
            """
            import numpy as np

            def op(inputs, params):
                return np.random.rand(3)
            """
        )
        assert EffectKind.UNSEEDED_RNG in fx.kinds()

    def test_constant_seed_is_seeded_stochastic(self):
        fx = effects_of(
            """
            import numpy as np

            def op(inputs, params):
                rng = np.random.default_rng(42)
                return rng.normal(size=3)
            """
        )
        assert fx.purity == SEEDED
        assert EffectKind.CONST_SEEDED_RNG in fx.kinds()
        assert fx.seed_params == ()

    def test_params_seed_direct(self):
        fx = effects_of(
            """
            import numpy as np

            def op(inputs, params):
                rng = np.random.default_rng(params["seed"])
                return rng.normal(size=3)
            """
        )
        assert fx.purity == SEEDED
        assert EffectKind.PARAM_SEEDED_RNG in fx.kinds()
        assert fx.seed_params == ("seed",)

    def test_params_seed_through_alias_and_converter(self):
        fx = effects_of(
            """
            import numpy as np

            def op(inputs, params):
                seed = int(params.get("seed", 0))
                rng = np.random.default_rng(seed)
                return rng.normal(size=3)
            """
        )
        assert fx.purity == SEEDED
        assert fx.seed_params == ("seed",)


class TestIO:
    def test_open_is_io(self):
        fx = effects_of(
            """
            def op(inputs, params):
                with open(params["path"]) as handle:
                    return handle.read()
            """
        )
        assert fx.purity == IO
        assert EffectKind.PERFORMS_IO in fx.kinds()

    def test_np_load_is_io(self):
        fx = effects_of(
            """
            import numpy as np

            def op(inputs, params):
                return np.load(params["path"])
            """
        )
        assert fx.purity == IO

    def test_stateful_beats_io(self):
        fx = effects_of(
            """
            def op(inputs, params):
                inputs[0].sort()
                with open("x") as handle:
                    return handle.read()
            """
        )
        assert fx.purity == STATEFUL


class TestModuleContext:
    def test_collects_bindings_and_mutable_globals(self):
        tree = ast.parse(
            "import numpy as np\n"
            "TABLE = {}\n"
            "cache = []\n"
            "LIMIT = 3\n"
            "def helper():\n    return 1\n"
        )
        ctx = collect_module_context(tree)
        assert {"np", "TABLE", "cache", "LIMIT", "helper"} <= set(ctx.bindings)
        assert set(ctx.mutable_globals) == {"TABLE", "cache"}
        assert "np" in ctx.imports

    def test_constant_style(self):
        assert effects.is_constant_style("OPERATIONS")
        assert effects.is_constant_style("_GRANULARITY_BY_FLOWID")
        assert effects.is_constant_style("__all__")
        assert not effects.is_constant_style("cache")


class TestSafetyLayer:
    def test_lambda_source_is_conservatively_stateful(self):
        fx = function_effects(eval("lambda inputs, params: None"))
        assert EffectKind.SOURCE_UNAVAILABLE in fx.kinds()
        assert fx.purity == STATEFUL

    def test_builtin_has_no_source(self):
        fx = function_effects(len)
        assert EffectKind.SOURCE_UNAVAILABLE in fx.kinds()

    def test_mutable_closure_is_stateful(self):
        state = {"calls": 0}

        def op(inputs, params):
            return state

        fx = function_effects(op)
        assert EffectKind.MUTABLE_CLOSURE in fx.kinds()
        assert fx.purity == STATEFUL

    def test_immutable_closure_is_fine(self):
        limit = 10

        def op(inputs, params):
            return limit

        fx = function_effects(op)
        assert EffectKind.MUTABLE_CLOSURE not in fx.kinds()

    def test_diagnostic_codes_mapped(self):
        report = operation_report(OPERATIONS["Downsample"])
        assert report.purity == SEEDED
        assert report.seed_params == ("seed",)
        assert report.cacheable and report.parallel_safe
        # param-threaded seeding is the desired state: no diagnostics
        assert report.codes() == ()

    def test_report_serializes(self):
        report = operation_report(OPERATIONS["Groupby"])
        payload = report.to_dict()
        assert payload["operation"] == "Groupby"
        assert payload["purity"] == PURE
        assert payload["cacheable"] is True
        assert payload["findings"] == []


class TestStockRegistry:
    def test_every_stock_operation_audits_clean(self):
        reports = audit_registry()
        assert set(reports) == set(OPERATIONS)
        unsafe = {
            name: [f.kind.value for f in report.findings]
            for name, report in reports.items()
            if not (report.cacheable and report.parallel_safe)
        }
        assert unsafe == {}

    def test_downsample_is_the_only_stochastic_op(self):
        reports = audit_registry()
        seeded = [n for n, r in reports.items() if r.purity == SEEDED]
        assert seeded == ["Downsample"]
