"""Tests for runtime value typing and profiling report helpers."""

import numpy as np
import pytest

from repro.core.profiling import OperationProfile, ProfileReport
from repro.core.types import (
    TypeInfo,
    ValueType,
    check_type,
    infer_type,
    infer_type_info,
)
from repro.flows import assemble_connections
from repro.ml import GaussianNB
from repro.net.table import PacketTable


class TestInferType:
    def test_packets(self):
        assert infer_type(PacketTable.empty(3)) is ValueType.PACKETS

    def test_flows(self):
        flows = assemble_connections(PacketTable.empty(0))
        assert infer_type(flows) is ValueType.FLOWS

    def test_features_vs_labels(self):
        assert infer_type(np.zeros((3, 2))) is ValueType.FEATURES
        assert infer_type(np.zeros(3, dtype=np.int64)) is ValueType.LABELS
        assert infer_type(np.zeros(3, dtype=bool)) is ValueType.LABELS

    def test_float_vector_is_not_labels(self):
        # a 1-D float array is a feature vector, not a label array
        assert infer_type(np.zeros(3)) is ValueType.ANY

    def test_odd_array_shapes_are_any(self):
        assert infer_type(np.float64(1.0).reshape(())) is ValueType.ANY
        assert infer_type(np.zeros((2, 2, 2))) is ValueType.ANY

    def test_metrics(self):
        assert infer_type({"precision": 1.0}) is ValueType.METRICS
        assert infer_type({"n": 3, "f1": np.float64(0.5)}) is ValueType.METRICS

    def test_non_numeric_dict_is_not_metrics(self):
        assert infer_type({"arrays": np.zeros(3)}) is ValueType.ANY
        assert infer_type({1: 2.0}) is ValueType.ANY

    def test_model(self):
        assert infer_type(GaussianNB()) is ValueType.MODEL

    def test_any(self):
        assert infer_type("a string") is ValueType.ANY


class TestInferTypeInfo:
    def test_packets_carry_row_count(self):
        info = infer_type_info(PacketTable.empty(5))
        assert info == TypeInfo(ValueType.PACKETS, rows=5)

    def test_flows_carry_row_count(self):
        flows = assemble_connections(PacketTable.empty(0))
        info = infer_type_info(flows)
        assert info.kind is ValueType.FLOWS
        assert info.rows == len(flows)

    def test_matrix_carries_shape_and_dtype(self):
        info = infer_type_info(np.zeros((7, 3)))
        assert info == TypeInfo(
            ValueType.FEATURES, rows=7, columns=3, dtype="float64"
        )

    def test_labels_carry_dtype(self):
        info = infer_type_info(np.zeros(4, dtype=np.int64))
        assert info == TypeInfo(ValueType.LABELS, rows=4, dtype="int64")

    def test_object_matrix_is_visible_to_the_vector_gate(self):
        # the engine refuses batched execution on dtype == "object"
        info = infer_type_info(np.empty((2, 2), dtype=object))
        assert info.kind is ValueType.FEATURES
        assert info.dtype == "object"

    def test_scalars_have_no_shape_facts(self):
        info = infer_type_info({"precision": 1.0})
        assert info == TypeInfo(ValueType.METRICS)
        assert infer_type_info("x") == TypeInfo(ValueType.ANY)

    def test_infer_type_is_the_kind_projection(self):
        value = np.zeros((2, 2))
        assert infer_type(value) is infer_type_info(value).kind


class TestCheckType:
    def test_accepts_match(self):
        check_type(np.zeros((2, 2)), ValueType.FEATURES, "here")

    def test_any_accepts_everything(self):
        check_type(object(), ValueType.ANY, "here")

    def test_labels_predictions_interchangeable(self):
        check_type(np.zeros(3, dtype=np.int64), ValueType.PREDICTIONS, "here")

    def test_rejects_mismatch(self):
        with pytest.raises(TypeError, match="expected a flows"):
            check_type(np.zeros((2, 2)), ValueType.FLOWS, "op")


class TestProfileReport:
    def make_report(self):
        return ProfileReport(
            [
                OperationProfile(0, "Groupby", "flows", 0.5, 1000),
                OperationProfile(1, "ApplyAggregates", "X", 0.1, 5000),
                OperationProfile(2, "Labels", "y", 0.0, 10, cached=True),
            ]
        )

    def test_totals(self):
        report = self.make_report()
        assert report.total_seconds == pytest.approx(0.6)
        assert report.peak_memory_bytes == 5000

    def test_hotspots_exclude_cached(self):
        hotspots = self.make_report().hotspots(top=5)
        assert [h.operation for h in hotspots] == ["Groupby", "ApplyAggregates"]

    def test_empty_report(self):
        report = ProfileReport()
        assert report.total_seconds == 0.0
        assert report.peak_memory_bytes == 0
        assert report.hotspots() == []

    def test_render_alignment(self):
        text = self.make_report().render()
        assert "Groupby" in text
        assert "yes" in text  # the cached row
