"""Tests for the disk cache's corruption and fault handling.

The disk tier must never take a run down: torn ``.npz`` files are
quarantined aside (so they miss exactly once and stay inspectable),
writes are atomic (temp file + rename), and injected disk faults
degrade to memory-only behaviour.
"""

import numpy as np
import pytest

from repro.core.engine import _ResultCache
from repro.faults import FaultPlan, active
from repro.obs import METRICS
from repro.obs import metrics as metric_names


@pytest.fixture()
def cache(tmp_path):
    return _ResultCache(disk_dir=str(tmp_path))


def disk_files(tmp_path, pattern="*"):
    return sorted(p.name for p in tmp_path.glob(pattern))


class TestAtomicWrites:
    def test_put_persists_and_leaves_no_temp_files(self, cache, tmp_path):
        cache.put("k1", np.arange(5))
        assert disk_files(tmp_path) == ["k1.npz"]
        assert disk_files(tmp_path, "*.tmp") == []

    def test_round_trip_through_disk(self, cache, tmp_path):
        cache.put("k1", np.arange(5.0))
        fresh = _ResultCache(disk_dir=str(tmp_path))  # new memory tier
        hit, value = fresh.get("k1")
        assert hit
        np.testing.assert_array_equal(value, np.arange(5.0))
        assert fresh.disk_hits == 1

    def test_non_array_values_stay_memory_only(self, cache, tmp_path):
        cache.put("k1", {"not": "an array"})
        assert disk_files(tmp_path) == []
        assert cache.get("k1") == (True, {"not": "an array"})

    def test_len_counts_memory_entries(self, cache):
        cache.put("a", np.ones(2))
        cache.put("b", {"x": 1})
        assert len(cache) == 2


class TestCorruptQuarantine:
    def test_garbage_file_quarantined_once(self, cache, tmp_path):
        (tmp_path / "bad.npz").write_bytes(b"not a real npz file")
        corrupt = METRICS.counter(metric_names.CACHE_CORRUPT).value
        hit, value = cache.get("bad")
        assert not hit and value is None
        assert disk_files(tmp_path) == ["bad.npz.corrupt"]
        assert (
            METRICS.counter(metric_names.CACHE_CORRUPT).value == corrupt + 1
        )
        # the poisoned bytes are kept for post-mortem inspection
        assert (tmp_path / "bad.npz.corrupt").read_bytes().startswith(b"not")
        # second lookup is a plain miss: nothing left to quarantine
        assert cache.get("bad") == (False, None)
        assert (
            METRICS.counter(metric_names.CACHE_CORRUPT).value == corrupt + 1
        )

    def test_truncated_zip_quarantined(self, cache, tmp_path):
        cache.put("torn", np.arange(64.0))
        path = tmp_path / "torn.npz"
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        fresh = _ResultCache(disk_dir=str(tmp_path))
        hit, _ = fresh.get("torn")
        assert not hit
        assert "torn.npz.corrupt" in disk_files(tmp_path)

    def test_quarantined_key_recomputes_and_reheals(self, cache, tmp_path):
        (tmp_path / "k.npz").write_bytes(b"junk")
        assert cache.get("k") == (False, None)  # quarantined
        cache.put("k", np.ones(3))  # recomputed value persists again
        assert "k.npz" in disk_files(tmp_path)
        assert "k.npz.corrupt" in disk_files(tmp_path)


class TestInjectedDiskFaults:
    def test_read_fault_quarantines_and_misses(self, cache, tmp_path):
        cache.put("k", np.arange(4))
        fresh = _ResultCache(disk_dir=str(tmp_path))
        with active(FaultPlan.parse("cache_disk_read:#1")):
            assert fresh.get("k") == (False, None)
        assert disk_files(tmp_path, "*.npz") == []
        assert "k.npz.corrupt" in disk_files(tmp_path)

    def test_write_fault_degrades_to_memory_only(self, cache, tmp_path):
        errors = METRICS.counter(metric_names.CACHE_WRITE_ERRORS).value
        with active(FaultPlan.parse("cache_disk_write:#1")):
            cache.put("k", np.arange(4))
        assert disk_files(tmp_path) == []  # no file, no temp orphan
        assert (
            METRICS.counter(metric_names.CACHE_WRITE_ERRORS).value
            == errors + 1
        )
        hit, value = cache.get("k")  # the memory tier still serves it
        assert hit
        np.testing.assert_array_equal(value, np.arange(4))

    def test_write_fault_is_transient(self, cache, tmp_path):
        with active(FaultPlan.parse("cache_disk_write:#1")):
            cache.put("k1", np.ones(2))  # fails
            cache.put("k2", np.ones(2))  # next write succeeds
        assert disk_files(tmp_path) == ["k2.npz"]

    def test_oserror_write_fault_also_handled(self, cache, tmp_path):
        with active(FaultPlan.parse("cache_disk_write:#1:oserror")):
            cache.put("k", np.arange(4))
        assert disk_files(tmp_path) == []
        assert cache.get("k")[0]
