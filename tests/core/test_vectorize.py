"""Tests for the vectorization-safety analyzer.

Covers the AST layer (row-loop/taint detection, loop-carried state,
callee markers), the verdict classifier, the registry-facing reports
with the L034-L040 diagnostics (positive and negative cases via fixture
operations), the full-registry audit regression, fingerprint-attached
verdicts, and the template-level shape pass (L035/L039).
"""

import ast
import json
import textwrap

import numpy as np
import pytest

from repro.analysis import analyze_template
from repro.analysis.vectorize import (
    BATCHABLE_VERDICTS,
    ELEMENTWISE,
    OPAQUE,
    ROW_PARALLEL,
    SEQUENTIAL,
    RowKind,
    analyze_rows,
    audit_vectorization,
    classify,
    operation_vector_report,
    verdict_fingerprints,
)
from repro.core.operations import (
    OPERATIONS,
    register_batch,
    register_operation,
)
from repro.core.types import ValueType


def findings_of(source, name="op"):
    """Row findings for function ``name`` inside a module source."""
    tree = ast.parse(textwrap.dedent(source))
    node = next(
        n for n in ast.walk(tree)
        if isinstance(n, ast.FunctionDef) and n.name == name
    )
    return analyze_rows(node)


def kinds_of(source, name="op"):
    return {finding.kind for finding in findings_of(source, name)}


@pytest.fixture
def scratch_ops():
    """Register fixture operations for one test; unregister after."""
    registered = []

    def add(name, fn, *, inputs=(ValueType.PACKETS,),
            output=ValueType.FEATURES, batch=None, **kwargs):
        register_operation(name, inputs, output, **kwargs)(fn)
        registered.append(name)
        if batch is not None:
            register_batch(name)(batch)
        return OPERATIONS[name]

    yield add
    for name in registered:
        OPERATIONS.pop(name, None)


class TestRowLoops:
    def test_loop_over_input_rows(self):
        kinds = kinds_of(
            """
            def op(inputs, params):
                out = 0
                for packet in inputs[0]:
                    out = max(out, packet)
                return out
            """
        )
        assert RowKind.ROW_LOOP in kinds

    def test_loop_over_input_column_alias(self):
        findings = findings_of(
            """
            def op(inputs, params):
                table = inputs[0]
                sizes = table.length
                for size in sizes:
                    print(size)
            """
        )
        assert any(f.kind is RowKind.ROW_LOOP for f in findings)

    def test_loop_over_params_is_not_a_row_loop(self):
        kinds = kinds_of(
            """
            def op(inputs, params):
                for field in params["fields"]:
                    print(field)
            """
        )
        assert RowKind.ROW_LOOP not in kinds

    def test_loop_over_literal_is_not_a_row_loop(self):
        kinds = kinds_of(
            """
            def op(inputs, params):
                for layer in ("ipv4", "tcp"):
                    print(layer)
            """
        )
        assert RowKind.ROW_LOOP not in kinds

    def test_enumerate_over_input_is_a_row_loop(self):
        kinds = kinds_of(
            """
            def op(inputs, params):
                for i, row in enumerate(inputs[0]):
                    print(i, row)
            """
        )
        assert RowKind.ROW_LOOP in kinds


class TestLoopCarried:
    def test_augmented_accumulator(self):
        kinds = kinds_of(
            """
            def op(inputs, params):
                total = 0.0
                for size in inputs[0].length:
                    total += size
                return total
            """
        )
        assert RowKind.LOOP_CARRIED in kinds

    def test_append_to_outer_list(self):
        kinds = kinds_of(
            """
            def op(inputs, params):
                seen = []
                for row in inputs[0]:
                    seen.append(row)
                return seen
            """
        )
        assert RowKind.LOOP_CARRIED in kinds

    def test_self_referential_rebinding(self):
        kinds = kinds_of(
            """
            def op(inputs, params):
                state = 0.0
                for row in inputs[0]:
                    state = state * 0.5 + row
                return state
            """
        )
        assert RowKind.LOOP_CARRIED in kinds

    def test_indexed_store_is_independent(self):
        # out[i] = f(row): each output row written once -- elementwise
        findings = findings_of(
            """
            import numpy as np

            def op(inputs, params):
                out = np.zeros(len(inputs[0]))
                for i, size in enumerate(inputs[0].length):
                    out[i] = float(size)
                return out
            """
        )
        kinds = {f.kind for f in findings}
        assert RowKind.ROW_LOOP in kinds
        assert RowKind.LOOP_CARRIED not in kinds

    def test_name_bound_inside_loop_is_fresh(self):
        kinds = kinds_of(
            """
            def op(inputs, params):
                for row in inputs[0]:
                    parts = []
                    parts.append(row)
            """
        )
        assert RowKind.LOOP_CARRIED not in kinds


class TestCalleeMarkers:
    def test_cumsum_on_inputs_is_sequential(self):
        kinds = kinds_of(
            """
            import numpy as np

            def op(inputs, params):
                return np.cumsum(inputs[0].length)
            """
        )
        assert RowKind.SEQUENTIAL_CALL in kinds

    def test_cumsum_on_params_is_not(self):
        kinds = kinds_of(
            """
            import numpy as np

            def op(inputs, params):
                return np.cumsum(params["weights"])
            """
        )
        assert RowKind.SEQUENTIAL_CALL not in kinds

    def test_diff_is_order_sensitive(self):
        kinds = kinds_of(
            """
            import numpy as np

            def op(inputs, params):
                return np.diff(inputs[0].ts)
            """
        )
        assert RowKind.ORDER_SENSITIVE in kinds

    def test_segmented_reduction_is_grouped(self):
        kinds = kinds_of(
            """
            import numpy as np

            def op(inputs, params):
                flows = inputs[0]
                return np.add.reduceat(flows.lengths, flows.starts)
            """
        )
        assert RowKind.GROUPED_REDUCTION in kinds

    def test_select_is_row_subset(self):
        kinds = kinds_of(
            """
            def op(inputs, params):
                return inputs[0].select(params["mask"])
            """
        )
        assert RowKind.ROW_SELECTION in kinds

    def test_object_dtype_markers(self):
        assert RowKind.OBJECT_DTYPE in kinds_of(
            """
            import numpy as np

            def op(inputs, params):
                return np.array(list(inputs[0]), dtype=object)
            """
        )
        assert RowKind.OBJECT_DTYPE in kinds_of(
            """
            def op(inputs, params):
                return inputs[0].astype(object)
            """
        )
        assert RowKind.OBJECT_DTYPE in kinds_of(
            """
            import numpy as np

            def op(inputs, params):
                shim = np.vectorize(params["fn"])
                return shim(inputs[0])
            """
        )

    def test_findings_are_deterministically_ordered(self):
        source = """
            import numpy as np

            def op(inputs, params):
                a = np.cumsum(inputs[0].length)
                b = np.diff(inputs[0].ts)
                return a, b
            """
        first = [f.to_dict() for f in findings_of(source)]
        second = [f.to_dict() for f in findings_of(source)]
        assert first == second
        lines = [f["line"] for f in first]
        assert lines == sorted(lines)


class TestClassifier:
    def test_scalar_domain_is_vacuously_elementwise(self):
        assert classify([], ("any",), "model") == ELEMENTWISE

    def test_clean_columnar_transform_is_elementwise(self):
        assert classify([], ("packets",), "features") == ELEMENTWISE

    def test_whole_input_reduction_is_sequential(self):
        assert classify([], ("features", "labels"), "model") == SEQUENTIAL

    def test_loop_carried_forces_sequential(self):
        findings = findings_of(
            """
            def op(inputs, params):
                total = 0.0
                for size in inputs[0].length:
                    total += size
            """
        )
        assert classify(findings, ("packets",), "features") == SEQUENTIAL

    def test_diff_over_packets_is_sequential(self):
        findings = findings_of(
            """
            import numpy as np

            def op(inputs, params):
                return np.diff(inputs[0].ts).reshape(-1, 1)
            """
        )
        assert classify(findings, ("packets",), "features") == SEQUENTIAL

    def test_diff_within_flows_stays_batchable(self):
        # intra-flow diff is row-local at flow granularity
        findings = findings_of(
            """
            import numpy as np

            def op(inputs, params):
                return np.diff(inputs[0].ts, prepend=0.0).reshape(-1, 1)
            """
        )
        verdict = classify(findings, ("flows",), "features")
        assert verdict in BATCHABLE_VERDICTS

    def test_grouped_reduction_is_row_parallel(self):
        findings = findings_of(
            """
            import numpy as np

            def op(inputs, params):
                flows = inputs[0]
                return np.add.reduceat(flows.lengths, flows.starts)
            """
        )
        assert classify(findings, ("flows",), "features") == ROW_PARALLEL

    def test_no_source_is_opaque(self):
        # opaque comes from the registry layer (no source to analyze)
        from repro.analysis.vectorize import RowFinding

        opaque = [RowFinding(RowKind.SOURCE_UNAVAILABLE, 0, "lambda")]
        assert classify(opaque, ("packets",), "features") == OPAQUE


class TestOperationReports:
    def test_l034_loop_carried_under_batch_declaration(self, scratch_ops):
        def scalar(inputs, params):
            total = 0.0
            out = np.zeros((len(inputs[0]), 1))
            for i, size in enumerate(inputs[0].length):
                total += float(size)
                out[i, 0] = total
            return out

        def batch(inputs, params):
            return np.cumsum(
                inputs[0].length.astype(np.float64)
            ).reshape(-1, 1)

        operation = scratch_ops("CarriedFixture", scalar, batch=batch)
        report = operation_vector_report(operation)
        assert report.verdict == SEQUENTIAL
        assert "L034" in report.codes()
        assert "L040" in report.codes()
        assert report.batchable is False
        assert report.refusal == f"verdict:{SEQUENTIAL}"

    def test_l034_absent_without_batch_declaration(self, scratch_ops):
        def scalar(inputs, params):
            total = 0.0
            out = np.zeros((len(inputs[0]), 1))
            for i, size in enumerate(inputs[0].length):
                total += float(size)
                out[i, 0] = total
            return out

        operation = scratch_ops("CarriedScalarFixture", scalar)
        report = operation_vector_report(operation)
        assert report.verdict == SEQUENTIAL
        assert "L034" not in report.codes()
        assert report.refusal == "no-batch-implementation"

    def test_l036_object_dtype_fallback(self, scratch_ops):
        def scalar(inputs, params):
            return np.array(
                [[float(x)] for x in inputs[0].length], dtype=object
            )

        operation = scratch_ops("ObjectFixture", scalar)
        report = operation_vector_report(operation)
        assert "L036" in report.codes()

    def test_l036_refuses_declared_batch(self, scratch_ops):
        def scalar(inputs, params):
            shim = np.frompyfunc(float, 1, 1)
            return shim(inputs[0].length).reshape(-1, 1)

        def batch(inputs, params):
            return inputs[0].length.astype(np.float64).reshape(-1, 1)

        operation = scratch_ops("ObjectBatchFixture", scalar, batch=batch)
        report = operation_vector_report(operation)
        assert report.verdict in BATCHABLE_VERDICTS
        assert report.refusal == "object-dtype-fallback"
        assert "L040" in report.codes()

    def test_l037_hidden_row_loop_in_featurizer(self, scratch_ops):
        def scalar(inputs, params):
            out = np.zeros((len(inputs[0]), 1))
            for i, size in enumerate(inputs[0].length):
                out[i, 0] = float(size)
            return out

        operation = scratch_ops("LoopyFixture", scalar)
        report = operation_vector_report(operation)
        assert report.verdict == ELEMENTWISE
        assert "L037" in report.codes()

    def test_l037_silenced_by_batch_declaration(self, scratch_ops):
        def scalar(inputs, params):
            out = np.zeros((len(inputs[0]), 1))
            for i, size in enumerate(inputs[0].length):
                out[i, 0] = float(size)
            return out

        def batch(inputs, params):
            return inputs[0].length.astype(np.float64).reshape(-1, 1)

        operation = scratch_ops("CoveredLoopFixture", scalar, batch=batch)
        report = operation_vector_report(operation)
        assert "L037" not in report.codes()
        assert report.batchable is True

    def test_l038_order_sensitive_without_sort_key(self, scratch_ops):
        def scalar(inputs, params):
            return np.cumsum(
                inputs[0].length.astype(np.float64)
            ).reshape(-1, 1)

        operation = scratch_ops("UnsortedFixture", scalar)
        report = operation_vector_report(operation)
        assert report.order_sensitive is True
        assert "L038" in report.codes()

    def test_l038_silenced_by_sort_key(self, scratch_ops):
        def scalar(inputs, params):
            return np.cumsum(
                inputs[0].length.astype(np.float64)
            ).reshape(-1, 1)

        operation = scratch_ops(
            "SortedFixture", scalar, sort_key="ts"
        )
        report = operation_vector_report(operation)
        assert "L038" not in report.codes()

    def test_l040_batch_on_sequential_verdict(self, scratch_ops):
        def scalar(inputs, params):
            order = np.argsort(inputs[0].ts)
            return inputs[0].length[order].astype(
                np.float64
            ).reshape(-1, 1)

        def batch(inputs, params):
            return scalar(inputs, params)

        operation = scratch_ops("DriftFixture", scalar, batch=batch)
        report = operation_vector_report(operation)
        assert report.verdict == SEQUENTIAL
        assert "L040" in report.codes()
        assert report.batchable is False

    def test_lambda_is_opaque(self, scratch_ops):
        operation = scratch_ops(
            "LambdaFixture", eval("lambda inputs, params: None")
        )
        report = operation_vector_report(operation)
        assert report.verdict == OPAQUE

    def test_report_serializes(self, scratch_ops):
        def scalar(inputs, params):
            return inputs[0].length.astype(np.float64).reshape(-1, 1)

        operation = scratch_ops("SerializeFixture", scalar)
        payload = operation_vector_report(operation).to_dict()
        assert payload["operation"] == "SerializeFixture"
        assert payload["verdict"] == ELEMENTWISE
        assert payload["batch"] is False
        assert payload["refusal"] == "no-batch-implementation"


class TestRegistryAudit:
    def test_audit_covers_every_operation(self):
        audit = audit_vectorization()
        names = [entry["operation"] for entry in audit["operations"]]
        assert names == sorted(OPERATIONS)
        assert audit["summary"]["total"] == len(OPERATIONS)

    def test_no_stock_operation_is_opaque(self):
        audit = audit_vectorization()
        assert audit["summary"]["opaque"] == 0

    def test_no_stock_operation_errors(self):
        audit = audit_vectorization()
        assert audit["summary"]["errors"] == 0

    def test_summary_counts_are_consistent(self):
        audit = audit_vectorization()
        summary = audit["summary"]
        assert (
            summary["elementwise"] + summary["row_parallel"]
            + summary["sequential"] + summary["opaque"]
        ) == summary["total"]

    def test_known_verdicts(self):
        audit = audit_vectorization()
        by_name = {
            entry["operation"]: entry for entry in audit["operations"]
        }
        assert by_name["ProtocolOneHot"]["verdict"] == ELEMENTWISE
        assert by_name["NprintEncode"]["verdict"] == ELEMENTWISE
        assert by_name["FirstNPackets"]["verdict"] == ROW_PARALLEL
        assert by_name["PropagateLabels"]["verdict"] == ROW_PARALLEL
        assert by_name["SortByTime"]["verdict"] == SEQUENTIAL
        assert by_name["train"]["verdict"] == SEQUENTIAL
        assert by_name["Normalize"]["verdict"] == SEQUENTIAL

    def test_converted_ops_are_batchable(self):
        audit = audit_vectorization()
        batchable = {
            entry["operation"]
            for entry in audit["operations"]
            if entry["batchable"]
        }
        assert batchable == {
            "DeviceLabels", "FirstNPackets", "NprintEncode",
            "ProtocolOneHot", "WlanFeatures",
        }

    def test_every_order_sensitive_op_declares_a_sort_key(self):
        audit = audit_vectorization()
        missing = [
            entry["operation"]
            for entry in audit["operations"]
            if entry["order_sensitive"] and entry["sort_key"] is None
        ]
        assert missing == []

    def test_audit_is_byte_deterministic(self):
        first = json.dumps(audit_vectorization(), sort_keys=True)
        second = json.dumps(audit_vectorization(), sort_keys=True)
        assert first == second


class TestVerdictFingerprints:
    TEMPLATE = [
        {"func": "Groupby", "input": None, "output": "flows",
         "flowid": ["connection"]},
        {"func": "ApplyAggregates", "input": ["flows"], "output": "X",
         "list": ["count", "mean:length"]},
        {"func": "Labels", "input": ["flows"], "output": "y"},
    ]

    def test_fingerprints_carry_verdicts(self):
        verdicts = verdict_fingerprints(
            self.TEMPLATE, outputs=["X", "y"]
        )
        funcs = {entry["func"] for entry in verdicts.values()}
        assert funcs == {"Groupby", "ApplyAggregates", "Labels"}
        for entry in verdicts.values():
            assert entry["verdict"] in (
                ELEMENTWISE, ROW_PARALLEL, SEQUENTIAL, OPAQUE
            )

    def test_equivalent_spellings_share_fingerprint_and_verdict(self):
        respelled = [
            {"func": "Groupby", "input": None, "output": "grouped",
             "flowid": ["connection"]},
            {"func": "ApplyAggregates", "input": ["grouped"],
             "output": "feats", "list": ["count", "mean:length"]},
            {"func": "Labels", "input": ["grouped"], "output": "labels"},
        ]
        left = verdict_fingerprints(self.TEMPLATE, outputs=["X", "y"])
        right = verdict_fingerprints(
            respelled, outputs=["feats", "labels"]
        )
        assert left == right


class TestTemplatePass:
    def test_l035_on_mixed_provenance_concat(self):
        template = [
            {"func": "SortByTime", "input": None, "output": "a"},
            {"func": "Downsample", "input": None, "output": "b",
             "max_packets": 100, "seed": 1},
            {"func": "ProtocolOneHot", "input": ["a"], "output": "Xa"},
            {"func": "ProtocolOneHot", "input": ["b"], "output": "Xb"},
            {"func": "ConcatFeatures", "input": ["Xa", "Xb"],
             "output": "X"},
        ]
        result = analyze_template(template, outputs=["X"])
        assert "L035" in result.codes()
        assert result.ok  # shape mismatches warn; runtime is the check

    def test_no_l035_on_shared_provenance(self):
        template = [
            {"func": "SortByTime", "input": None, "output": "a"},
            {"func": "ProtocolOneHot", "input": ["a"], "output": "Xa"},
            {"func": "PacketFields", "input": ["a"], "output": "Xb",
             "fields": ["length", "ttl"]},
            {"func": "ConcatFeatures", "input": ["Xa", "Xb"],
             "output": "X"},
        ]
        result = analyze_template(template, outputs=["X"])
        assert "L035" not in result.codes()

    def test_l035_on_provably_bad_select_columns(self):
        template = [
            {"func": "ProtocolOneHot", "input": None, "output": "X"},
            {"func": "SelectColumns", "input": ["X"], "output": "Xs",
             "indices": [0, 9]},
        ]
        result = analyze_template(template, outputs=["Xs"])
        assert "L035" in result.codes()

    def test_l039_sequential_prefix_blocks_batchable_stage(
        self, scratch_ops
    ):
        def prefix(inputs, params):
            table = inputs[0]
            total = 0.0
            for size in table.length:
                total += float(size)
            return table

        scratch_ops(
            "SeqPrefixFixture", prefix, output=ValueType.PACKETS
        )
        template = [
            {"func": "SeqPrefixFixture", "input": None, "output": "p"},
            {"func": "ProtocolOneHot", "input": ["p"], "output": "X"},
        ]
        result = analyze_template(template, outputs=["X"])
        assert "L039" in result.codes()

    def test_no_l039_for_sort_prefix(self):
        # a sort is sequential but not hard-sequential: the batchable
        # stage after it still runs vectorized on the sorted rows
        template = [
            {"func": "SortByTime", "input": None, "output": "p"},
            {"func": "ProtocolOneHot", "input": ["p"], "output": "X"},
        ]
        result = analyze_template(template, outputs=["X"])
        assert "L039" not in result.codes()

    def test_stock_catalog_templates_stay_warning_free(self):
        from repro.algorithms import ALGORITHMS

        for algorithm_id in sorted(ALGORITHMS):
            spec = ALGORITHMS[algorithm_id]
            result = analyze_template(
                spec.full_template(), outputs=["metrics"]
            )
            vector_codes = result.codes() & {
                "L034", "L035", "L036", "L037", "L038", "L039", "L040"
            }
            assert vector_codes == set(), (algorithm_id, vector_codes)
