"""Behavioural tests for the operation library."""

import numpy as np
import pytest

from repro.core import ExecutionEngine, Pipeline, PipelineError, TemplateError
from repro.core.operations import OPERATIONS
from repro.flows import Granularity, assemble_connections, assemble_unidirectional


def run_ops(trace, template, outputs=None, **engine_kwargs):
    engine = ExecutionEngine(use_cache=False, track_memory=False, **engine_kwargs)
    pipeline = Pipeline.from_template(template)
    return engine.run(pipeline, trace, outputs=outputs)


class TestPacketOps:
    def test_filter_packets_tcp(self, small_trace):
        out = run_ops(
            small_trace,
            [{"func": "FilterPackets", "input": None, "output": "tcp",
              "keep": "tcp"}],
        )
        assert (out["tcp"].proto == 6).all()

    def test_filter_unknown_predicate(self, small_trace):
        # rejected by the static analyzer before any packet is touched
        with pytest.raises(TemplateError, match="carrier_pigeon"):
            run_ops(
                small_trace,
                [{"func": "FilterPackets", "input": None, "output": "x",
                  "keep": "carrier_pigeon"}],
            )

    def test_downsample_caps_size(self, small_trace):
        out = run_ops(
            small_trace,
            [{"func": "Downsample", "input": None, "output": "small",
              "max_packets": 100}],
        )
        assert len(out["small"]) == 100

    def test_downsample_noop_when_small(self, small_trace):
        out = run_ops(
            small_trace,
            [{"func": "Downsample", "input": None, "output": "same",
              "max_packets": 10_000_000}],
        )
        assert len(out["same"]) == len(small_trace)

    def test_field_extract_rejects_unknown_field(self, small_trace):
        with pytest.raises(TemplateError, match="warp_factor"):
            run_ops(
                small_trace,
                [{"func": "FieldExtract", "input": None, "output": "x",
                  "param": ["warp_factor"]}],
            )

    def test_packet_fields_shape_and_alias(self, small_trace):
        out = run_ops(
            small_trace,
            [{"func": "PacketFields", "input": None, "output": "X",
              "fields": ["packetLength", "ttl", "srcPort"]}],
        )
        assert out["X"].shape == (len(small_trace), 3)
        assert np.array_equal(out["X"][:, 0], small_trace.length)

    def test_protocol_one_hot_rows(self, small_trace):
        out = run_ops(
            small_trace,
            [{"func": "ProtocolOneHot", "input": None, "output": "X"}],
        )
        # every IP packet is exactly one of tcp/udp/icmp here
        assert set(out["X"].sum(axis=1)) <= {0.0, 1.0}


class TestGroupingOps:
    def test_groupby_connection_matches_assembler(self, small_trace):
        out = run_ops(
            small_trace,
            [{"func": "Groupby", "input": None, "output": "flows",
              "flowid": ["connection"]}],
        )
        direct = assemble_connections(small_trace)
        assert len(out["flows"]) == len(direct)
        assert out["flows"].granularity == Granularity.CONNECTION

    def test_groupby_5tuple(self, small_trace):
        out = run_ops(
            small_trace,
            [{"func": "Groupby", "input": None, "output": "flows",
              "flowid": ["5tuple"]}],
        )
        assert len(out["flows"]) == len(assemble_unidirectional(small_trace))

    def test_groupby_bad_flowid(self, small_trace):
        with pytest.raises(TemplateError, match="flowid"):
            run_ops(
                small_trace,
                [{"func": "Groupby", "input": None, "output": "flows",
                  "flowid": ["quantum"]}],
            )

    def test_time_slice_splits_long_flows(self, small_trace):
        out = run_ops(
            small_trace,
            [
                {"func": "Groupby", "input": None, "output": "flows",
                 "flowid": ["connection"]},
                {"func": "TimeSlice", "input": ["flows"], "output": "sliced",
                 "window": 5.0},
            ],
            outputs=["flows", "sliced"],
        )
        flows, sliced = out["flows"], out["sliced"]
        assert len(sliced) >= len(flows)
        assert sliced.counts.sum() == flows.counts.sum()
        # no window spans more than 5 seconds
        assert (sliced.durations <= 5.0 + 1e-9).all()

    def test_time_slice_rejects_nonpositive_window(self, small_trace):
        with pytest.raises(TemplateError, match="window"):
            run_ops(
                small_trace,
                [
                    {"func": "Groupby", "input": None, "output": "flows",
                     "flowid": ["connection"]},
                    {"func": "TimeSlice", "input": ["flows"], "output": "s",
                     "window": 0.0},
                ],
            )


class TestAggregateOps:
    TEMPLATE = [
        {"func": "Groupby", "input": None, "output": "flows",
         "flowid": ["connection"]},
    ]

    def agg(self, trace, specs):
        template = self.TEMPLATE + [
            {"func": "ApplyAggregates", "input": ["flows"], "output": "X",
             "list": specs},
        ]
        out = run_ops(trace, template, outputs=["flows", "X"])
        return out["flows"], out["X"]

    def test_count_matches_flow_counts(self, small_trace):
        flows, X = self.agg(small_trace, ["count"])
        assert np.array_equal(X[:, 0], flows.counts)

    def test_mean_length_manual_check(self, small_trace):
        flows, X = self.agg(small_trace, ["mean:length"])
        for i in (0, len(flows) // 2, len(flows) - 1):
            manual = small_trace.length[flows.packet_indices(i)].mean()
            assert X[i, 0] == pytest.approx(manual)

    def test_median_manual_check(self, small_trace):
        flows, X = self.agg(small_trace, ["median:length"])
        for i in (0, len(flows) - 1):
            manual = np.median(small_trace.length[flows.packet_indices(i)])
            assert X[i, 0] == pytest.approx(manual)

    def test_entropy_single_value_is_zero(self, small_trace):
        flows, X = self.agg(small_trace, ["entropy:proto"])
        single_proto = [
            i
            for i in range(len(flows))
            if len(set(small_trace.proto[flows.packet_indices(i)])) == 1
        ]
        assert single_proto
        assert np.allclose(X[single_proto, 0], 0.0)

    def test_nunique_bounded_by_count(self, small_trace):
        flows, X = self.agg(small_trace, ["nunique:dst_port", "count"])
        assert (X[:, 0] <= X[:, 1]).all()
        assert (X[:, 0] >= 1).all()

    def test_flag_frac_in_unit_interval(self, small_trace):
        _, X = self.agg(small_trace, ["flag_frac:SYN", "flag_frac:ACK"])
        assert (X >= 0).all() and (X <= 1).all()

    def test_unknown_spec_rejected(self, small_trace):
        with pytest.raises(TemplateError, match="harmonic"):
            self.agg(small_trace, ["harmonic:length"])

    def test_unknown_flag_rejected(self, small_trace):
        with pytest.raises(TemplateError, match="WARP"):
            self.agg(small_trace, ["flag_frac:WARP"])

    def test_empty_spec_list_rejected(self, small_trace):
        with pytest.raises(TemplateError, match="non-empty"):
            self.agg(small_trace, [])

    def test_iat_mean_nonnegative(self, small_trace):
        _, X = self.agg(small_trace, ["iat_mean", "iat_std"])
        assert (X >= 0).all()

    def test_frac_fwd_for_connections(self, small_trace):
        _, X = self.agg(small_trace, ["frac_fwd"])
        assert (X > 0).all()  # the initiator always sent >= 1 packet
        assert (X <= 1).all()


class TestFeatureOps:
    def test_first_n_packets_shape(self, small_trace):
        out = run_ops(
            small_trace,
            [
                {"func": "Groupby", "input": None, "output": "flows",
                 "flowid": ["connection"]},
                {"func": "FirstNPackets", "input": ["flows"], "output": "X",
                 "n": 6},
            ],
        )
        flows_count = len(assemble_connections(small_trace))
        assert out["X"].shape == (flows_count, 18)  # sizes + iat + dir

    def test_first_n_padding_is_zero(self, small_trace):
        out = run_ops(
            small_trace,
            [
                {"func": "Groupby", "input": None, "output": "flows",
                 "flowid": ["connection"]},
                {"func": "FirstNPackets", "input": ["flows"], "output": "X",
                 "n": 200, "include_iat": False, "include_direction": False},
            ],
            outputs=["flows", "X"],
        )
        flows, X = out["flows"], out["X"]
        short = int(np.argmin(flows.counts))
        count = flows.counts[short]
        assert (X[short, count:] == 0).all()

    def test_zeek_conn_log_columns(self, small_trace):
        out = run_ops(
            small_trace,
            [
                {"func": "Groupby", "input": None, "output": "flows",
                 "flowid": ["connection"]},
                {"func": "ZeekConnLog", "input": ["flows"], "output": "X"},
            ],
            outputs=["flows", "X"],
        )
        flows, X = out["flows"], out["X"]
        assert X.shape == (len(flows), 12)
        # orig + resp packets add up to the flow packet count
        assert np.allclose(X[:, 1] + X[:, 2], flows.counts)

    def test_flow_discriminators_finite(self, small_trace):
        out = run_ops(
            small_trace,
            [
                {"func": "Groupby", "input": None, "output": "flows",
                 "flowid": ["connection"]},
                {"func": "FlowDiscriminators", "input": ["flows"],
                 "output": "X"},
            ],
        )
        assert np.isfinite(out["X"]).all()
        assert out["X"].shape[1] >= 30

    def test_nprint_encode_is_binary(self, small_trace):
        out = run_ops(
            small_trace,
            [{"func": "NprintEncode", "input": None, "output": "X",
              "layers": ["ipv4", "tcp"]}],
        )
        X = out["X"]
        assert set(np.unique(X)) <= {0.0, 1.0}
        assert X.shape[1] > 100

    def test_nprint_unknown_layer(self, small_trace):
        with pytest.raises(TemplateError, match="ipx"):
            run_ops(
                small_trace,
                [{"func": "NprintEncode", "input": None, "output": "X",
                  "layers": ["ipx"]}],
            )

    def test_concat_features(self, small_trace):
        out = run_ops(
            small_trace,
            [
                {"func": "PacketFields", "input": None, "output": "A",
                 "fields": ["length"]},
                {"func": "ProtocolOneHot", "input": None, "output": "B"},
                {"func": "ConcatFeatures", "input": ["A", "B"], "output": "X"},
            ],
        )
        assert out["X"].shape == (len(small_trace), 5)

    def test_select_columns(self, small_trace):
        out = run_ops(
            small_trace,
            [
                {"func": "PacketFields", "input": None, "output": "A",
                 "fields": ["length", "ttl", "src_port"]},
                {"func": "SelectColumns", "input": ["A"], "output": "X",
                 "indices": [2, 0]},
            ],
        )
        assert np.array_equal(out["X"][:, 1], small_trace.length)

    def test_select_columns_out_of_range(self, small_trace):
        with pytest.raises(PipelineError):
            run_ops(
                small_trace,
                [
                    {"func": "PacketFields", "input": None, "output": "A",
                     "fields": ["length"]},
                    {"func": "SelectColumns", "input": ["A"], "output": "X",
                     "indices": [5]},
                ],
            )

    def test_labels_from_packets_and_flows(self, small_trace):
        out = run_ops(
            small_trace,
            [
                {"func": "Labels", "input": None, "output": "packet_y"},
                {"func": "Groupby", "input": None, "output": "flows",
                 "flowid": ["connection"]},
                {"func": "Labels", "input": ["flows"], "output": "flow_y"},
            ],
            outputs=["packet_y", "flow_y", "flows"],
        )
        assert len(out["packet_y"]) == len(small_trace)
        assert len(out["flow_y"]) == len(out["flows"])
        assert out["packet_y"].sum() > 0

    def test_kitsune_features_shape(self, small_trace):
        out = run_ops(
            small_trace,
            [
                {"func": "Downsample", "input": None, "output": "small",
                 "max_packets": 500},
                {"func": "KitsuneFeatures", "input": ["small"], "output": "X",
                 "lambdas": [1.0, 0.01]},
            ],
        )
        assert out["X"].shape == (500, 2 * 4 * 3)
        assert np.isfinite(out["X"]).all()

    def test_normalize_standard(self, small_trace):
        out = run_ops(
            small_trace,
            [
                {"func": "PacketFields", "input": None, "output": "A",
                 "fields": ["length", "ttl"]},
                {"func": "Normalize", "input": ["A"], "output": "X"},
            ],
        )
        assert np.allclose(out["X"].mean(axis=0), 0.0, atol=1e-9)


class TestModelOps:
    def test_end_to_end_train_eval(self, small_trace):
        out = run_ops(
            small_trace,
            [
                {"func": "Groupby", "input": None, "output": "flows",
                 "flowid": ["connection"]},
                {"func": "ApplyAggregates", "input": ["flows"], "output": "X",
                 "list": ["count", "duration", "mean:length", "nunique:dst_port",
                          "flag_frac:SYN"]},
                {"func": "Labels", "input": ["flows"], "output": "y"},
                {"func": "model", "model_type": "DecisionTree", "input": None,
                 "output": "clf"},
                {"func": "train", "input": ["clf", "X", "y"], "output": "fit"},
                {"func": "predict", "input": ["fit", "X"], "output": "pred"},
                {"func": "evaluate", "input": ["pred", "y"], "output": "m"},
            ],
        )
        assert out["m"]["precision"] > 0.9  # training-set fit

    def test_unknown_model_type(self, small_trace):
        with pytest.raises(TemplateError, match="QuantumForest"):
            run_ops(
                small_trace,
                [{"func": "model", "model_type": "QuantumForest",
                  "input": None, "output": "clf"}],
            )

    def test_train_does_not_mutate_prototype(self, small_trace):
        out = run_ops(
            small_trace,
            [
                {"func": "Groupby", "input": None, "output": "flows",
                 "flowid": ["connection"]},
                {"func": "ApplyAggregates", "input": ["flows"], "output": "X",
                 "list": ["count"]},
                {"func": "Labels", "input": ["flows"], "output": "y"},
                {"func": "model", "model_type": "DecisionTree", "input": None,
                 "output": "clf"},
                {"func": "train", "input": ["clf", "X", "y"], "output": "fit"},
            ],
            outputs=["clf", "fit"],
        )
        assert not hasattr(out["clf"], "nodes_")
        assert hasattr(out["fit"], "nodes_")

    def test_scaler_wrapper(self, small_trace):
        out = run_ops(
            small_trace,
            [
                {"func": "model", "model_type": "KNN", "input": None,
                 "output": "clf"},
                {"func": "WithScaler", "input": ["clf"], "output": "scaled"},
            ],
            outputs=["scaled"],
        )
        from repro.ml.pipeline_model import TransformedClassifier

        assert isinstance(out["scaled"], TransformedClassifier)


class TestPropagateLabels:
    def test_round_trips_flow_labels_to_packets(self, small_trace):
        out = run_ops(
            small_trace,
            [
                {"func": "Groupby", "input": None, "output": "flows",
                 "flowid": ["connection"]},
                {"func": "PropagateLabels", "input": ["flows"],
                 "output": "packet_y"},
            ],
            outputs=["flows", "packet_y"],
        )
        flows, packet_y = out["flows"], out["packet_y"]
        assert len(packet_y) == len(small_trace)
        # every packet of a malicious flow is labelled malicious
        for i in np.flatnonzero(flows.labels == 1)[:20]:
            assert (packet_y[flows.packet_indices(i)] == 1).all()
        # propagated labels dominate the raw per-packet labels
        assert (packet_y >= small_trace.label).all()
