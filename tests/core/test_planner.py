"""Tests for the shared-work planner: merging, diagnostics, round trip."""

import pytest

from repro.analysis import equivalence
from repro.analysis.diagnostics import Severity
from repro.analysis.planner import (
    ExecutionPlan,
    build_matrix_plan,
    build_plan,
    render_dot,
    render_plan,
    verify_plan,
)
from repro.core.errors import TemplateDiagnosticError
from repro.core.operations import OPERATIONS, register_operation
from repro.core.types import ValueType


T_COUNT = [
    {"func": "Groupby", "input": None, "output": "flows",
     "flowid": ["connection"]},
    {"func": "ApplyAggregates", "input": ["flows"], "output": "X",
     "list": ["count"]},
    {"func": "Labels", "input": ["flows"], "output": "y"},
]

T_DURATION = [
    {"func": "Groupby", "input": None, "output": "flows",
     "flowid": ["connection"]},
    {"func": "ApplyAggregates", "input": ["flows"], "output": "X",
     "list": ["duration"]},
    {"func": "Labels", "input": ["flows"], "output": "y"},
]


def _codes(plan):
    return sorted({d.code for d in plan.diagnostics})


class TestMerge:
    def test_shared_prefix_interned_once(self):
        plan = build_plan(
            {"a": T_COUNT, "b": T_DURATION},
            datasets=("F0",),
            outputs=("X", "y"),
        )
        by_func = {}
        for stage in plan.stages:
            by_func.setdefault(stage.func, []).append(stage)
        assert len(by_func["Groupby"]) == 1
        assert by_func["Groupby"][0].refcount == 2
        assert by_func["Groupby"][0].consumers == ("a", "b")
        assert len(by_func["Labels"]) == 1
        # the diverging aggregates stay separate
        assert len(by_func["ApplyAggregates"]) == 2
        assert all(s.refcount == 1 for s in by_func["ApplyAggregates"])

    def test_outputs_map_to_stage_ids(self):
        plan = build_plan(
            {"a": T_COUNT, "b": T_DURATION},
            datasets=("F0",),
            outputs=("X", "y"),
        )
        stage_ids = set(plan.stage_map())
        for label in ("a", "b"):
            assert set(plan.outputs[label]) == {"X", "y"}
            assert set(plan.outputs[label].values()) <= stage_ids
        # both templates' y comes from the same shared Labels stage
        assert plan.outputs["a"]["y"] == plan.outputs["b"]["y"]
        assert plan.outputs["a"]["X"] != plan.outputs["b"]["X"]

    def test_stages_for_filters_by_consumer(self):
        plan = build_plan(
            {"a": T_COUNT, "b": T_DURATION},
            datasets=("F0",),
            outputs=("X", "y"),
        )
        only_a = plan.stages_for(["a"])
        assert all("a" in stage.consumers for stage in only_a)
        assert {s.func for s in only_a} == {
            "Groupby", "ApplyAggregates", "Labels"
        }
        assert len(only_a) == 3

    def test_cost_summary_counts_savings(self):
        plan = build_plan(
            {"a": T_COUNT, "b": T_DURATION},
            datasets=("F0",),
            outputs=("X", "y"),
        )
        summary = plan.cost_summary()
        assert summary["shared"] == 2  # Groupby + Labels
        assert summary["savings"] == pytest.approx(
            summary["unshared_cost"] - summary["planned_cost"]
        )
        assert summary["savings"] > 0


class TestDiagnostics:
    def test_l029_near_duplicate_spelling(self):
        spelled = [dict(T_DURATION[0], timeout=3600.0)] + T_DURATION[1:]
        plan = build_plan(
            {"a": T_COUNT, "b": spelled},
            datasets=("F0",),
            outputs=("X", "y"),
        )
        l029 = [d for d in plan.diagnostics if d.code == "L029"]
        assert len(l029) == 1
        assert l029[0].severity is Severity.WARNING
        assert "Groupby" in l029[0].message
        # the redundant spelling still merges into one shared stage
        groupby = [s for s in plan.stages if s.func == "Groupby"]
        assert len(groupby) == 1 and groupby[0].refcount == 2

    def test_l030_dead_branch(self):
        dead = T_COUNT + [
            {"func": "ApplyAggregates", "input": ["flows"],
             "output": "unused", "list": ["pps"]},
        ]
        plan = build_plan(
            {"a": dead}, datasets=("F0",), outputs=("X", "y")
        )
        l030 = [d for d in plan.diagnostics if d.code == "L030"]
        assert len(l030) == 1
        assert "unused" in l030[0].message

    def test_l031_stateful_prefix_not_shared(self):
        calls = []

        def _stateful(inputs, params):
            calls.append(1)  # module/closure state: audits stateful
            return inputs[0]

        register_operation(
            "PlannerStatefulFixture", (ValueType.PACKETS,),
            ValueType.PACKETS,
        )(_stateful)
        template = [
            {"func": "PlannerStatefulFixture", "input": None,
             "output": "pkts"},
            {"func": "Groupby", "input": ["pkts"], "output": "flows",
             "flowid": ["connection"]},
            {"func": "Labels", "input": ["flows"], "output": "y"},
        ]
        try:
            plan = build_plan(
                {"a": template, "b": [dict(s) for s in template]},
                datasets=("F0",),
                outputs=("y",),
            )
        finally:
            OPERATIONS.pop("PlannerStatefulFixture", None)
        l031 = [d for d in plan.diagnostics if d.code == "L031"]
        assert l031 and all(d.severity is Severity.WARNING for d in l031)
        # nothing merged: every stage is per-template ("fp!label" ids)
        assert plan.shared_stages == ()
        assert all("!" in stage.stage_id for stage in plan.stages)
        assert all(not stage.shareable for stage in plan.stages)

    def test_l032_collision_detected(self, monkeypatch):
        monkeypatch.setattr(
            equivalence, "_digest", lambda material: "deadbeef"
        )
        plan = build_plan(
            {"a": T_COUNT}, datasets=("F0",), outputs=("X", "y")
        )
        l032 = [d for d in plan.diagnostics if d.code == "L032"]
        assert l032 and all(d.severity is Severity.ERROR for d in l032)
        with pytest.raises(TemplateDiagnosticError):
            plan.analysis().raise_if_errors()

    def test_l033_drift_refused(self):
        plan = build_matrix_plan(["A13"], ["F0"])
        assert not verify_plan(plan).errors
        plan.template_fingerprints["A13"] = "0" * 64
        result = verify_plan(plan)
        assert [d.code for d in result.errors] == ["L033"]
        with pytest.raises(TemplateDiagnosticError):
            result.raise_if_errors()

    def test_l033_unknown_algorithm(self):
        plan = build_matrix_plan(["A13"], ["F0"])
        plan.algorithms = ("A13", "ZZZ")
        codes = [d.code for d in verify_plan(plan).errors]
        assert "L033" in codes


class TestMatrixPlan:
    def test_a13_a14_share_connection_prefix(self):
        plan = build_matrix_plan(["A13", "A14"], ["F0", "F1"])
        assert plan.algorithms == ("A13", "A14")
        assert plan.datasets == ("F0", "F1")
        assert sorted(plan.pairs) == [
            ("A13", "F0"), ("A13", "F1"), ("A14", "F0"), ("A14", "F1"),
        ]
        shared = {s.func for s in plan.shared_stages}
        assert shared == {"Groupby", "Labels", "AttackIds"}
        assert all(s.refcount == 2 for s in plan.shared_stages)
        assert not plan.analysis().errors

    def test_full_catalog_plan_builds_clean(self):
        plan = build_matrix_plan()
        assert len(plan.algorithms) >= 16
        assert plan.shared_stages  # the catalog provably shares work
        assert not plan.analysis().errors
        assert not verify_plan(plan).errors

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            build_matrix_plan(["A13"], ["F999"])


class TestSerialization:
    def test_json_round_trip_exact(self, tmp_path):
        plan = build_matrix_plan(["A13", "A14"], ["F0", "F1"])
        clone = ExecutionPlan.from_dict(plan.to_dict())
        assert clone.to_dict() == plan.to_dict()
        path = tmp_path / "plan.json"
        plan.save(str(path))
        loaded = ExecutionPlan.load(str(path))
        assert loaded.to_dict() == plan.to_dict()
        assert not verify_plan(loaded).errors

    def test_renderings(self):
        plan = build_matrix_plan(["A13", "A14"], ["F0"])
        table = render_plan(plan)
        assert "Groupby" in table and "shared" in table
        dot = render_dot(plan)
        assert dot.startswith("digraph") and "Groupby" in dot
