"""Shared fixtures for framework tests: a small labelled trace."""

import numpy as np
import pytest

from repro.net.table import PacketTable
from repro.traffic import AttackSpec, NetworkScenario


@pytest.fixture(scope="session")
def small_trace() -> PacketTable:
    """A small mixed trace with one attack, generated once per session."""
    scenario = NetworkScenario(
        name="unit-test",
        device_counts={"workstation": 2, "thermostat": 1, "camera": 1},
        duration=60.0,
        seed=99,
        attacks=(AttackSpec("port_scan", 0.4, 0.7, intensity=0.2),),
    )
    return scenario.generate()
