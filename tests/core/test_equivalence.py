"""Tests for the cross-template equivalence analyzer (normal form).

The canonicalization contract: idempotent, insensitive to parameter key
order, intermediate naming and independent-step order, defaults filled
before hashing, seeds folded into the fingerprint, dead branches
pruned, duplicate steps interned.
"""

import pytest

from repro.analysis.equivalence import (
    SOURCE_FINGERPRINT,
    canonicalize,
    params_token,
)
from repro.core.errors import TemplateDiagnosticError


BASE = [
    {"func": "Groupby", "input": None, "output": "flows",
     "flowid": ["connection"]},
    {"func": "ApplyAggregates", "input": ["flows"], "output": "X",
     "list": ["count", "duration"]},
    {"func": "Labels", "input": ["flows"], "output": "y"},
]


def _step(graph, func):
    matches = [s for s in graph.steps if s.func == func]
    assert len(matches) == 1, f"expected one {func} step"
    return matches[0]


class TestCanonicalization:
    def test_idempotent(self):
        graph = canonicalize(BASE, outputs=["X", "y"])
        again = canonicalize(graph.to_template(), outputs=["X", "y"])
        assert again.fingerprint == graph.fingerprint
        assert [s.fingerprint for s in again.steps] == [
            s.fingerprint for s in graph.steps
        ]
        assert again.outputs == graph.outputs

    def test_param_key_order_irrelevant(self):
        one = [
            {"func": "Groupby", "input": None, "output": "flows",
             "flowid": ["connection"], "timeout": 1200.0},
            {"func": "Labels", "input": ["flows"], "output": "y"},
        ]
        other = [
            {"func": "Groupby", "input": None, "output": "flows",
             "timeout": 1200.0, "flowid": ["connection"]},
            {"func": "Labels", "input": ["flows"], "output": "y"},
        ]
        assert (
            canonicalize(one, outputs=["y"]).fingerprint
            == canonicalize(other, outputs=["y"]).fingerprint
        )

    def test_intermediate_names_irrelevant(self):
        renamed = [
            {**dict(step), "input": ["g"] if step["input"] else None,
             "output": "g" if step["output"] == "flows" else step["output"]}
            for step in BASE
        ]
        a = canonicalize(BASE, outputs=["X", "y"])
        b = canonicalize(renamed, outputs=["X", "y"])
        assert a.fingerprint == b.fingerprint
        assert a.outputs == b.outputs

    def test_independent_step_order_irrelevant(self):
        swapped = [BASE[0], BASE[2], BASE[1]]
        a = canonicalize(BASE, outputs=["X", "y"])
        b = canonicalize(swapped, outputs=["X", "y"])
        assert a.fingerprint == b.fingerprint
        assert [s.fingerprint for s in a.steps] == [
            s.fingerprint for s in b.steps
        ]

    def test_explicit_default_equals_omitted(self):
        spelled = [
            {"func": "Groupby", "input": None, "output": "flows",
             "flowid": ["connection"], "timeout": 3600.0},
            {"func": "Labels", "input": ["flows"], "output": "y"},
        ]
        a = canonicalize(BASE[:1] + BASE[2:], outputs=["y"])
        b = canonicalize(spelled, outputs=["y"])
        assert _step(a, "Groupby").fingerprint == \
            _step(b, "Groupby").fingerprint
        # the raw spellings differ, and the normal form remembers both
        assert _step(a, "Groupby").raw_tokens != \
            _step(b, "Groupby").raw_tokens

    def test_source_inputs_use_symbolic_fingerprint(self):
        graph = canonicalize(BASE, outputs=["X", "y"])
        assert _step(graph, "Groupby").inputs == (SOURCE_FINGERPRINT,)

    def test_error_template_has_no_normal_form(self):
        with pytest.raises(TemplateDiagnosticError):
            canonicalize(
                [{"func": "Teleport", "input": None, "output": "x"}]
            )


class TestSeedFolding:
    ONE = [{"func": "Downsample", "input": None, "output": "pkts",
            "max_packets": 50}]

    def test_different_seeds_different_fingerprints(self):
        seeded = [{**self.ONE[0], "seed": 1}]
        a = canonicalize(self.ONE)
        b = canonicalize(seeded)
        assert _step(a, "Downsample").fingerprint != \
            _step(b, "Downsample").fingerprint

    def test_omitted_seed_equals_explicit_default(self):
        explicit = [{**self.ONE[0], "seed": 0}]
        a = canonicalize(self.ONE)
        b = canonicalize(explicit)
        assert _step(a, "Downsample").fingerprint == \
            _step(b, "Downsample").fingerprint

    def test_seeded_step_is_shareable(self):
        graph = canonicalize(self.ONE)
        step = _step(graph, "Downsample")
        assert step.purity == "seeded-stochastic"
        assert step.shareable
        assert step.seeds == ("seed",)


class TestRewrites:
    def test_dead_branch_pruned(self):
        dead = BASE + [
            {"func": "ApplyAggregates", "input": ["flows"],
             "output": "unused", "list": ["pps"]},
        ]
        graph = canonicalize(dead, outputs=["X", "y"])
        assert len(graph.pruned) == 1
        assert graph.pruned[0][2] == "unused"
        assert len(graph.steps) == 3  # the dead aggregate is gone
        # pruning changes nothing about the kept outputs
        assert graph.outputs == canonicalize(BASE, outputs=["X", "y"]).outputs

    def test_duplicate_steps_interned(self):
        doubled = [
            {"func": "Groupby", "input": None, "output": "f1",
             "flowid": ["connection"]},
            {"func": "Groupby", "input": None, "output": "f2",
             "flowid": ["connection"]},
            {"func": "ApplyAggregates", "input": ["f1"], "output": "X",
             "list": ["count"]},
            {"func": "Labels", "input": ["f2"], "output": "y"},
        ]
        graph = canonicalize(doubled, outputs=["X", "y"])
        groupby = _step(graph, "Groupby")
        assert groupby.source_indices == (0, 1)
        assert len(graph.steps) == 3
        assert not graph.collisions

    def test_to_template_is_runnable_normal_form(self):
        rendered = canonicalize(BASE, outputs=["X", "y"]).to_template()
        outputs = [step["output"] for step in rendered]
        assert "X" in outputs and "y" in outputs
        # intermediates are canonical %N names
        assert all(
            name in ("X", "y") or name.startswith("%") for name in outputs
        )


class TestParamsToken:
    def test_sorted_and_stable(self):
        assert params_token({"b": 1, "a": 2}) == params_token({"a": 2, "b": 1})
        assert params_token({"a": (1, 2)}) == params_token({"a": [1, 2]})
