"""Tests for the concurrency-safety analyzer and the engine gate.

Covers lock discovery and the ``with``-held walker, shared-state
classification into the four verdicts, the lock-acquisition graph with
cycle detection, bare acquire/release detection, thread-hostile
callees, escape analysis on carried stream state, the registry-facing
reports with the L049-L056 diagnostics (positive and negative fixture
operations), the full-registry audit regression, the template-level
pass (L055), and the engine gate: ``StreamSession`` refusing unproven
pipelines visibly and ``run_plan`` marking stages thread-safe.
"""

import ast
import textwrap
import threading

import pytest

from repro.analysis import analyze_template
from repro.analysis.concurrency import (
    CONCURRENT_SAFE_VERDICTS,
    LOCK_GUARDED,
    RACY,
    READ_ONLY_SHARED,
    SESSION_CONFINED,
    audit_concurrency,
    bare_lock_ops,
    classify_shared,
    class_locks,
    lock_cycles,
    lock_order_edges,
    module_concurrency_report,
    module_locks,
    operation_concurrency_report,
    shared_access_sites,
    state_escape_audit,
    thread_hostile_calls,
    unguarded_module_state,
    _make_resolver,
)
from repro.core import ExecutionEngine, Pipeline
from repro.core.errors import TemplateError
from repro.core.operations import (
    CONCURRENCY_CLASSES,
    OPERATIONS,
    register_operation,
    register_stream,
)
from repro.core.types import ValueType
from repro.obs import METRICS, RingBufferSink, get_tracer
from repro.obs import metrics as metric_names

# module-level fixtures the analyzer sees when it parses this file:
# a real lock, a constant-style registry, and a lowercase mutable
# global (reads of the latter demote an op to read-only-shared)
_TEST_LOCK = threading.Lock()
_RACY_SINK: dict = {}
shared_counters = {"hits": 0}


def parse(source: str) -> ast.Module:
    return ast.parse(textwrap.dedent(source))


def fn_of(source: str, name: str = "op") -> ast.FunctionDef:
    tree = parse(source)
    return next(
        n for n in ast.walk(tree)
        if isinstance(n, ast.FunctionDef) and n.name == name
    )


def sites_of(source: str, shared: set, name: str = "op"):
    tree = parse(source)
    locks = module_locks(tree)
    resolve = _make_resolver(frozenset(locks))
    return shared_access_sites(
        fn_of(source, name), frozenset(shared), resolve
    )


@pytest.fixture
def scratch_ops():
    """Register fixture operations for one test; unregister after."""
    registered = []

    def add(name, fn, *, inputs=(ValueType.PACKETS,),
            output=ValueType.FEATURES, stream_fn=None, **kwargs):
        register_operation(name, inputs, output, **kwargs)(fn)
        registered.append(name)
        if stream_fn is not None:
            register_stream(name)(stream_fn)
        return OPERATIONS[name]

    yield add
    for name in registered:
        OPERATIONS.pop(name, None)


class TestLockDiscovery:
    def test_module_locks_found(self):
        tree = parse(
            """
            import threading

            _lock = threading.Lock()
            _GUARD: threading.RLock = threading.RLock()
            plain = {}
            """
        )
        assert set(module_locks(tree)) == {"_lock", "_GUARD"}

    def test_class_locks_found(self):
        tree = parse(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.cv: threading.Condition = threading.Condition()
                    self.items = []
            """
        )
        cls = tree.body[1]
        assert set(class_locks(cls)) == {"_lock", "cv"}


class TestSharedAccessClassification:
    def test_unguarded_write_is_racy(self):
        source = """
            registry = {}

            def op(inputs, params):
                registry["k"] = 1
                return inputs[0]
            """
        info = classify_shared(sites_of(source, {"registry"}))["registry"]
        assert info["verdict"] == RACY
        assert info["unguarded"]

    def test_guarded_write_is_lock_guarded(self):
        source = """
            import threading

            _lock = threading.Lock()
            registry = {}

            def op(inputs, params):
                with _lock:
                    registry["k"] = 1
                return inputs[0]
            """
        info = classify_shared(sites_of(source, {"registry"}))["registry"]
        assert info["verdict"] == LOCK_GUARDED
        assert info["guard"] == "_lock"

    def test_mixed_guarded_and_bare_write_is_racy(self):
        source = """
            import threading

            _lock = threading.Lock()
            registry = {}

            def op(inputs, params):
                with _lock:
                    registry["k"] = 1
                registry["j"] = 2
                return inputs[0]
            """
        info = classify_shared(sites_of(source, {"registry"}))["registry"]
        assert info["verdict"] == RACY
        assert info["mixed"]

    def test_reads_only_stay_read_only_shared(self):
        source = """
            registry = {}

            def op(inputs, params):
                return registry.get("k")
            """
        info = classify_shared(sites_of(source, {"registry"}))["registry"]
        assert info["verdict"] == READ_ONLY_SHARED
        assert info["reads"] >= 1

    def test_mutating_method_counts_as_write(self):
        source = """
            log = []

            def op(inputs, params):
                log.append(1)
                return inputs[0]
            """
        info = classify_shared(sites_of(source, {"log"}))["log"]
        assert info["verdict"] == RACY
        assert ".append() call" in info["unguarded"][0][1]

    def test_local_shadow_is_not_shared(self):
        source = """
            registry = {}

            def op(inputs, params):
                registry = {}
                registry["k"] = 1
                return registry
            """
        sites = sites_of(source, {"registry"})
        assert [s for s in sites if s.kind == "write"] == []

    def test_imported_module_function_is_not_a_mutation(self):
        tree = parse(
            """
            import numpy as np

            def op(inputs, params):
                return np.sort(inputs[0].length)
            """
        )
        from repro.analysis.effects import collect_module_context

        ctx = collect_module_context(tree)
        sites = shared_access_sites(
            fn_of("""
            import numpy as np

            def op(inputs, params):
                return np.sort(inputs[0].length)
            """),
            frozenset(ctx.bindings),
            _make_resolver(frozenset()),
            imports=ctx.imports,
        )
        assert [s for s in sites if s.kind == "write"] == []


class TestLockGraph:
    def test_nested_acquisition_builds_edges(self):
        tree = parse(
            """
            import threading

            _a = threading.Lock()
            _b = threading.Lock()

            def op():
                with _a:
                    with _b:
                        pass
            """
        )
        resolve = _make_resolver(frozenset(module_locks(tree)))
        fn = next(
            n for n in tree.body if isinstance(n, ast.FunctionDef)
        )
        edges = lock_order_edges(fn, resolve)
        assert "_b" in edges.get("_a", {})
        assert lock_cycles(edges) == []

    def test_inverted_order_is_a_cycle(self):
        tree = parse(
            """
            import threading

            _a = threading.Lock()
            _b = threading.Lock()

            def one():
                with _a:
                    with _b:
                        pass

            def two():
                with _b:
                    with _a:
                        pass
            """
        )
        resolve = _make_resolver(frozenset(module_locks(tree)))
        edges: dict = {}
        for fn in tree.body:
            if not isinstance(fn, ast.FunctionDef):
                continue
            for held, acquired in lock_order_edges(fn, resolve).items():
                edges.setdefault(held, {}).update(acquired)
        cycles = lock_cycles(edges)
        assert cycles and set(cycles[0]) >= {"_a", "_b"}


class TestBareLocksAndHostileCalls:
    def test_bare_acquire_release_detected(self):
        tree = parse(
            """
            import threading

            _lock = threading.Lock()

            def op():
                _lock.acquire()
                try:
                    pass
                finally:
                    _lock.release()
            """
        )
        ops = bare_lock_ops(tree, frozenset({"_lock"}))
        assert {(recv, method) for _, recv, method in ops} == {
            ("_lock", "acquire"), ("_lock", "release"),
        }

    def test_with_statement_is_clean(self):
        tree = parse(
            """
            import threading

            _lock = threading.Lock()

            def op():
                with _lock:
                    pass
            """
        )
        assert bare_lock_ops(tree, frozenset({"_lock"})) == []

    def test_hostile_calls_found(self):
        node = fn_of(
            """
            import os
            import numpy as np

            def op(inputs, params):
                os.chdir("/tmp")
                np.random.seed(0)
                os.environ["TZ"] = "UTC"
                return inputs[0]
            """
        )
        dotted = {d for _, d in thread_hostile_calls(node)}
        assert "os.chdir" in dotted
        assert "np.random.seed" in dotted
        assert any("environ" in d for d in dotted)


class TestEscapeAnalysis:
    def test_state_assigned_to_global_escapes(self):
        node = fn_of(
            """
            def op(table, params, state):
                global latest
                latest = state
                return table, state
            """
        )
        escapes = state_escape_audit(node, "state", frozenset({"latest"}))
        assert escapes

    def test_state_stored_into_shared_container_escapes(self):
        node = fn_of(
            """
            def op(table, params, state):
                registry["live"] = state
                return table, state
            """
        )
        escapes = state_escape_audit(
            node, "state", frozenset({"registry"})
        )
        assert escapes

    def test_alias_of_state_is_tracked(self):
        node = fn_of(
            """
            def op(table, params, state):
                carrier = state
                registry["live"] = carrier
                return table, state
            """
        )
        escapes = state_escape_audit(
            node, "state", frozenset({"registry"})
        )
        assert escapes

    def test_confined_state_is_clean(self):
        node = fn_of(
            """
            def op(table, params, state):
                state = dict(state or {})
                state["n"] = state.get("n", 0) + len(table)
                return table, state
            """
        )
        assert state_escape_audit(node, "state", frozenset()) == []


class TestUnguardedModuleState:
    def test_lowercase_mutable_global_flagged(self):
        tree = parse(
            """
            pending = {}

            def handle(key):
                pending[key] = 1
            """
        )
        problems = unguarded_module_state(tree)
        names = {name for _, name, _ in problems}
        assert names == {"pending"}

    def test_register_functions_exempt(self):
        tree = parse(
            """
            TABLE = {}

            def register_defaults():
                TABLE["a"] = 1
            """
        )
        assert unguarded_module_state(tree) == []

    def test_lock_guarded_write_is_clean(self):
        tree = parse(
            """
            import threading

            _lock = threading.Lock()
            TABLE = {}

            def handle(key):
                with _lock:
                    TABLE[key] = 1
            """
        )
        assert unguarded_module_state(tree) == []


class TestOperationReports:
    def test_clean_op_is_session_confined(self, scratch_ops):
        def clean(inputs, params):
            return inputs[0].length * 2.0

        operation = scratch_ops("CleanProbe", clean)
        report = operation_concurrency_report(operation)
        assert report.verdict == SESSION_CONFINED
        assert report.concurrent_safe
        assert report.refusal is None

    def test_global_write_is_racy_l049(self, scratch_ops):
        def racy(inputs, params):
            _RACY_SINK["last"] = len(inputs[0])
            return inputs[0].length

        operation = scratch_ops("RacyProbe", racy)
        report = operation_concurrency_report(operation)
        assert report.verdict == RACY
        assert "L049" in report.codes()
        assert report.refusal == f"verdict:{RACY}"
        assert not report.concurrent_safe

    def test_guarded_write_is_lock_guarded(self, scratch_ops):
        def guarded(inputs, params):
            with _TEST_LOCK:
                _RACY_SINK["last"] = len(inputs[0])
            return inputs[0].length

        operation = scratch_ops("GuardedProbe", guarded)
        report = operation_concurrency_report(operation)
        assert report.verdict == LOCK_GUARDED
        assert report.guards == ("_TEST_LOCK",)
        assert report.refusal is None

    def test_mutable_global_read_is_read_only_shared(self, scratch_ops):
        def reader(inputs, params):
            return inputs[0].length * float(shared_counters["hits"] + 1)

        operation = scratch_ops("ReaderProbe", reader)
        report = operation_concurrency_report(operation)
        assert report.verdict == READ_ONLY_SHARED
        assert report.verdict in CONCURRENT_SAFE_VERDICTS
        assert report.refusal is None

    def test_hostile_callee_is_racy_l056(self, scratch_ops):
        def hostile(inputs, params):
            import os

            os.putenv("PROBE", "1")
            return inputs[0].length

        operation = scratch_ops("HostileProbe", hostile)
        report = operation_concurrency_report(operation)
        assert report.verdict == RACY
        assert "L056" in report.codes()

    def test_stream_state_escape_is_racy_l052(self, scratch_ops):
        def fn(inputs, params):
            return inputs[0].length

        def leaky_stream(table, params, state):
            _RACY_SINK["state"] = state
            return table.length, state

        operation = scratch_ops(
            "LeakyStream", fn, stream_fn=leaky_stream, stream="stateless"
        )
        report = operation_concurrency_report(operation)
        assert report.verdict == RACY
        assert "L052" in report.codes()

    def test_declared_drift_is_l054(self, scratch_ops):
        def racy(inputs, params):
            _RACY_SINK["drift"] = 1
            return inputs[0].length

        operation = scratch_ops(
            "DriftProbe", racy, concurrency="session-confined"
        )
        report = operation_concurrency_report(operation)
        assert "L054" in report.codes()
        assert report.declared == "session-confined"

    def test_opaque_body_is_refused(self, scratch_ops):
        operation = scratch_ops(
            "OpaqueProbe", eval("lambda inputs, params: inputs[0]")
        )
        report = operation_concurrency_report(operation)
        assert report.verdict == "opaque"
        assert report.refusal == "verdict:opaque"

    def test_bad_declaration_rejected(self):
        with pytest.raises(ValueError, match="concurrency"):
            register_operation(
                "BadDecl", (ValueType.PACKETS,), ValueType.FEATURES,
                concurrency="thread-hostile",
            )(lambda inputs, params: inputs[0])
        OPERATIONS.pop("BadDecl", None)

    def test_declaration_classes_are_the_verdicts(self):
        assert set(CONCURRENCY_CLASSES) == {
            SESSION_CONFINED, LOCK_GUARDED, READ_ONLY_SHARED, RACY,
        }


class TestRegistryAudit:
    def test_stock_registry_is_fully_classified(self):
        payload = audit_concurrency()
        summary = payload["summary"]
        assert summary["total"] == len(OPERATIONS)
        assert summary["concurrent_safe"] == summary["total"]
        assert summary["racy"] == 0
        assert summary["errors"] == 0
        assert summary["module_cycles"] == 0
        assert summary["racy_modules"] == 0
        for op in payload["operations"]:
            assert op["verdict"] in (
                SESSION_CONFINED, LOCK_GUARDED, READ_ONLY_SHARED,
            )

    def test_stream_declaring_ops_declare_concurrency(self):
        payload = audit_concurrency()
        declared = {
            op["operation"]: op["declared"]
            for op in payload["operations"]
            if op["declared"] is not None
        }
        assert declared, "no operation declares a concurrency class"
        for name, klass in declared.items():
            assert klass in CONCURRENCY_CLASSES, (name, klass)

    def test_obs_modules_are_lock_guarded(self):
        for module in ("repro.obs.metrics", "repro.obs.spans"):
            report = module_concurrency_report(module)
            assert report["verdict"] == LOCK_GUARDED, module
            assert report["cycles"] == []
            assert report["errors"] == 0, report["diagnostics"]

    def test_module_report_finds_planted_race(self, tmp_path):
        # module_concurrency_report only loads importable modules;
        # exercise the same machinery on a parsed tree instead
        tree = parse(
            """
            import threading

            class Shared:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []

                def good(self, x):
                    with self._lock:
                        self.items.append(x)

                def bad(self, x):
                    self.items.append(x)
            """
        )
        from repro.analysis.concurrency import _class_access_sites

        sites = _class_access_sites(tree.body[1], frozenset())
        info = classify_shared(sites)["Shared.items"]
        assert info["verdict"] == RACY
        assert info["mixed"]


class TestTemplatePass:
    def test_racy_step_pins_template_l055(self, scratch_ops):
        def racy(inputs, params):
            _RACY_SINK["pin"] = 1
            return inputs[0].length

        scratch_ops("PinProbe", racy, output=ValueType.FEATURES)
        result = analyze_template(
            [
                {"func": "PinProbe", "input": None, "output": "X"},
                {"func": "Labels", "input": None, "output": "y"},
            ]
        )
        assert "L055" in result.codes()

    def test_clean_template_has_no_l055(self):
        result = analyze_template(
            [
                {"func": "PacketFields", "input": None, "output": "X",
                 "list": ["length"]},
                {"func": "Labels", "input": None, "output": "y"},
            ]
        )
        assert "L055" not in result.codes()


STREAM_TEMPLATE = [
    {"func": "KitsuneFeatures", "input": None, "output": "X",
     "lambdas": [1.0, 0.1]},
    {"func": "Labels", "input": None, "output": "y"},
]


def capture(fn):
    sink = RingBufferSink(capacity=None)
    tracer = get_tracer()
    tracer.add_sink(sink)
    try:
        fn()
    finally:
        tracer.remove_sink(sink)
    return [e for e in sink.events() if e.get("kind") == "span"]


class TestEngineGate:
    def test_proven_pipeline_passes_the_gate(self, small_trace):
        engine = ExecutionEngine(use_cache=False, track_memory=False)
        session = engine.open_stream(
            Pipeline.from_template(STREAM_TEMPLATE), outputs=["X", "y"]
        )
        assert session.concurrency_refusals == []
        session.raise_if_concurrency_refused()  # must not raise
        session.close()

    def test_racy_pipeline_is_refused_visibly(self, scratch_ops):
        def racy_fn(inputs, params):
            return inputs[0].length

        def racy_stream(table, params, state):
            _RACY_SINK["live"] = state
            return table.length, state

        scratch_ops(
            "RacyServe", racy_fn, stream_fn=racy_stream,
            stream="stateless",
        )
        engine = ExecutionEngine(use_cache=False, track_memory=False)
        session = engine.open_stream(
            Pipeline.from_template(
                [{"func": "RacyServe", "input": None, "output": "X"}]
            ),
            outputs=["X"],
        )
        assert session.concurrency_refusals
        before = METRICS.counter(
            metric_names.CONCURRENCY_REFUSALS, ""
        ).value
        tracer = get_tracer()
        sink = RingBufferSink(capacity=None)
        tracer.add_sink(sink)
        try:
            with pytest.raises(TemplateError, match="concurrent-safe"):
                with tracer.span("probe") as span:
                    session.raise_if_concurrency_refused(span)
        finally:
            tracer.remove_sink(sink)
        after = METRICS.counter(
            metric_names.CONCURRENCY_REFUSALS, ""
        ).value
        assert after > before
        probe = next(
            e for e in sink.events()
            if e.get("kind") == "span" and e["name"] == "probe"
        )
        assert "RacyServe" in probe["attrs"]["concurrency_refused"]
        session.close()

    def test_run_plan_marks_stages_thread_safe(self, small_trace):
        from repro.analysis.planner import build_plan

        engine = ExecutionEngine(use_cache=False, track_memory=False)
        plan = build_plan(
            {"a": STREAM_TEMPLATE}, datasets=("F0",),
            outputs=("X", "y"),
        )
        spans = capture(lambda: engine.run_plan(plan, small_trace))
        staged = [
            s for s in spans if "plan_stage" in s.get("attrs", {})
        ]
        assert staged, "run_plan produced no stage spans"
        for span in staged:
            assert span["attrs"]["thread_safe"] is True
