"""Tests for the static template analyzer.

Assertions are on stable diagnostic *codes*, not message substrings --
that is the analyzer's contract with its users.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import CODES, analyze_pipeline, analyze_template
from repro.analysis.sources import templates_in_python_file
from repro.core import (
    ExecutionEngine,
    Pipeline,
    TemplateDiagnosticError,
    TemplateError,
)
from repro.core.operations import OPERATIONS
from repro.core.pipeline import SOURCE_NAME, OperationCall
from repro.net.table import PacketTable

REPO_ROOT = Path(__file__).resolve().parents[2]

GOOD = [
    {"func": "Groupby", "input": None, "output": "flows",
     "flowid": ["connection"]},
    {"func": "ApplyAggregates", "input": ["flows"], "output": "X",
     "list": ["count", "duration", "mean:length"]},
    {"func": "Labels", "input": ["flows"], "output": "y"},
    {"func": "model", "model_type": "RandomForest", "input": None,
     "output": "clf"},
    {"func": "train", "input": ["clf", "X", "y"], "output": "fitted"},
    {"func": "predict", "input": ["fitted", "X"], "output": "preds"},
    {"func": "evaluate", "input": ["preds", "y"], "output": "metrics"},
]


def codes_of(template, **kwargs):
    return analyze_template(template, **kwargs).codes()


class TestParseLints:
    def test_good_template_is_clean(self):
        result = analyze_template(GOOD)
        assert result.ok
        assert result.diagnostics == []

    def test_empty_template(self):
        assert "L001" in codes_of([])

    def test_non_list_template(self):
        assert "L001" in codes_of({"func": "Groupby"})

    def test_step_not_a_mapping(self):
        assert "L002" in codes_of(["not a dict"])

    def test_missing_func(self):
        assert "L003" in codes_of([{"output": "x"}])

    def test_unknown_operation(self):
        assert "L004" in codes_of(
            [{"func": "Teleport", "input": None, "output": "x"}]
        )

    def test_missing_output(self):
        assert "L005" in codes_of(
            [{"func": "Groupby", "input": None, "flowid": ["connection"]}]
        )

    def test_bad_input_spec(self):
        template = [dict(GOOD[0], input=42)]
        assert "L006" in codes_of(template)

    def test_one_run_reports_many_defects(self):
        # tolerant parsing: every defect surfaces in a single run
        template = [
            {"func": "Teleport", "output": "a"},
            {"output": "b"},
            {"func": "Groupby", "input": None, "flowid": ["connection"]},
        ]
        found = codes_of(template)
        assert {"L004", "L003", "L005"} <= found


class TestDataflowLints:
    def test_undefined_input(self):
        template = [
            {"func": "ApplyAggregates", "input": ["nowhere"], "output": "X",
             "list": ["count"]},
        ]
        assert "L009" in codes_of(template)

    def test_forward_reference(self):
        # consuming a name defined by a *later* step is still undefined
        template = [
            {"func": "ApplyAggregates", "input": ["flows"], "output": "X",
             "list": ["count"]},
            {"func": "Groupby", "input": None, "output": "flows",
             "flowid": ["connection"]},
        ]
        result = analyze_template(template)
        assert "L009" in result.codes()
        [diag] = [d for d in result.errors if d.code == "L009"]
        assert diag.step == 0

    def test_wrong_arity(self):
        template = [dict(GOOD[0]), dict(GOOD[1], input=["flows", "flows"])]
        assert "L008" in codes_of(template)

    def test_type_mismatch(self):
        # ApplyAggregates wants flows, gets raw packets
        template = [
            {"func": "FilterPackets", "input": None, "output": "pkts",
             "keep": "tcp"},
            {"func": "ApplyAggregates", "input": ["pkts"], "output": "X",
             "list": ["count"]},
        ]
        assert "L010" in codes_of(template)

    def test_train_fed_packets_is_ill_typed(self):
        template = [
            {"func": "FilterPackets", "input": None, "output": "pkts",
             "keep": "tcp"},
            {"func": "Labels", "input": None, "output": "y"},
            {"func": "model", "model_type": "RandomForest", "input": None,
             "output": "clf"},
            {"func": "train", "input": ["clf", "pkts", "y"], "output": "m"},
        ]
        assert "L010" in codes_of(template)

    def test_duplicate_output_warns(self):
        template = [dict(GOOD[0]), dict(GOOD[0])]
        result = analyze_template(template)
        assert "L011" in {d.code for d in result.warnings}
        assert result.ok  # warnings do not block execution

    def test_dead_operation_warns(self):
        template = [
            dict(GOOD[0]),
            {"func": "ZeekConnLog", "input": ["flows"], "output": "unused"},
            {"func": "Labels", "input": ["flows"], "output": "y"},
        ]
        result = analyze_template(template)
        assert "L012" in {d.code for d in result.warnings}

    def test_requested_output_respected(self):
        template = [
            dict(GOOD[0]),
            {"func": "ZeekConnLog", "input": ["flows"], "output": "states"},
            {"func": "Labels", "input": ["flows"], "output": "y"},
        ]
        result = analyze_template(template, outputs=["states", "y"])
        assert "L012" not in result.codes()

    def test_missing_requested_output(self):
        assert "L019" in codes_of(GOOD, outputs=["no_such_value"])


class TestParameterLints:
    def test_missing_required_param(self):
        template = [{"func": "Groupby", "input": None, "output": "flows"}]
        assert "L007" in codes_of(template)

    def test_unknown_param(self):
        template = [dict(GOOD[0], warp=9)]
        assert "L007" in codes_of(template)

    def test_unknown_model_type(self):
        template = [
            {"func": "model", "model_type": "QuantumForest", "input": None,
             "output": "clf"},
        ]
        assert "L015" in codes_of(template)

    def test_unsupported_flowid(self):
        template = [
            {"func": "Groupby", "input": None, "output": "flows",
             "flowid": ["macAddress"]},
        ]
        assert "L017" in codes_of(template)

    def test_bad_aggregate_spec(self):
        template = [
            dict(GOOD[0]),
            {"func": "ApplyAggregates", "input": ["flows"], "output": "X",
             "list": ["entropy:warp_core"]},
        ]
        assert "L018" in codes_of(template)

    def test_bad_field_name(self):
        template = [
            {"func": "FieldExtract", "input": None, "output": "pkts",
             "param": ["warp_factor"]},
        ]
        assert "L018" in codes_of(template)

    def test_nonpositive_window(self):
        template = [
            dict(GOOD[0]),
            {"func": "TimeSlice", "input": ["flows"], "output": "w",
             "window": -1.0},
        ]
        assert "L018" in codes_of(template)


class TestOrderingLints:
    def test_train_before_model(self):
        template = [
            dict(GOOD[0]), dict(GOOD[1]), dict(GOOD[2]),
            {"func": "train", "input": ["clf", "X", "y"], "output": "fit"},
            {"func": "model", "model_type": "RandomForest", "input": None,
             "output": "clf"},
        ]
        assert "L013" in codes_of(template)

    def test_train_without_model(self):
        template = [
            dict(GOOD[0]), dict(GOOD[1]), dict(GOOD[2]),
            {"func": "train", "input": ["zzz", "X", "y"], "output": "fit"},
        ]
        assert "L013" in codes_of(template)

    def test_trained_never_applied_warns(self):
        template = GOOD[:5]
        result = analyze_template(template)
        assert "L014" in {d.code for d in result.warnings}

    def test_full_skeleton_has_no_ordering_lints(self):
        assert codes_of(GOOD).isdisjoint({"L013", "L014"})


class TestFaithfulness:
    def test_connection_groupby_on_packet_dataset(self):
        # P0 has packet-granular ground truth; connection-level
        # aggregation cannot be faithfully evaluated on it
        result = analyze_template(GOOD, dataset_id="P0")
        assert "L016" in result.codes()
        assert not result.ok

    def test_connection_groupby_on_connection_dataset(self):
        assert "L016" not in codes_of(GOOD, dataset_id="F0")

    def test_finer_groupby_on_coarser_dataset_ok(self):
        # labels propagate down: 5tuple grouping on connection labels
        template = [dict(GOOD[0], flowid=["5tuple"])] + GOOD[1:]
        assert "L016" not in codes_of(template, dataset_id="F0")

    def test_unknown_dataset(self):
        assert "L020" in codes_of(GOOD, dataset_id="F999")

    def test_no_dataset_no_faithfulness_lint(self):
        assert codes_of(GOOD).isdisjoint({"L016", "L020"})


class TestEntryPoints:
    def test_from_template_raises_with_codes(self):
        template = [
            {"func": "Teleport", "input": None, "output": "x"},
        ]
        with pytest.raises(TemplateDiagnosticError) as info:
            Pipeline.from_template(template)
        assert "L004" in info.value.codes()
        assert info.value.diagnostics[0].severity.value == "error"

    def test_diagnostic_error_is_a_template_error(self):
        with pytest.raises(TemplateError):
            Pipeline.from_template([{"func": "Teleport", "output": "x"}])

    def test_engine_rejects_hand_built_bad_pipeline(self):
        # no template involved: the pipeline is constructed directly,
        # and the engine's own analyzer call still fails fast
        train = OPERATIONS["train"]
        pipeline = Pipeline([
            OperationCall(
                operation=train,
                inputs=(SOURCE_NAME, SOURCE_NAME, SOURCE_NAME),
                output="m",
                params={},
            )
        ])
        engine = ExecutionEngine(track_memory=False)
        with pytest.raises(TemplateDiagnosticError) as info:
            engine.run(pipeline, PacketTable.empty(0))
        assert "L010" in info.value.codes()
        # nothing ran: no profile report was produced
        assert engine.last_report is None

    def test_analyze_pipeline_on_good_template(self):
        assert analyze_pipeline(Pipeline.from_template(GOOD)).ok


class TestCatalogIsClean:
    def test_all_catalog_algorithms_lint_clean(self):
        from repro.algorithms import ALGORITHMS

        for algorithm_id, spec in sorted(ALGORITHMS.items()):
            result = analyze_template(spec.full_template())
            assert result.ok, f"{algorithm_id}: {result.render()}"

    def test_starter_templates_lint_clean(self):
        from repro.core.template_io import STARTER_TEMPLATES

        for name, template in STARTER_TEMPLATES.items():
            result = analyze_template(list(template))
            assert result.ok, f"{name}: {result.render()}"

    def test_example_templates_lint_clean(self):
        targets = []
        for path in sorted((REPO_ROOT / "examples").glob("*.py")):
            targets.extend(templates_in_python_file(path))
        assert targets, "expected literal templates in examples/"
        for target in targets:
            result = analyze_template(target.template)
            assert result.ok, f"{target.label}: {result.render()}"


class TestFailFastBeforeAnyTrace:
    def test_ill_typed_template_rejected_without_generation(
        self, tmp_path, monkeypatch, capsys
    ):
        """The acceptance scenario: a template feeding raw PACKETS to
        'train' is rejected with a stable code before any trace is
        generated -- the traffic builder must never be invoked."""
        from repro.cli import main
        from repro.traffic.network import NetworkScenario

        calls = []

        def forbidden(self, *args, **kwargs):
            calls.append(self.name)
            raise AssertionError("lint must not generate traffic")

        monkeypatch.setattr(NetworkScenario, "generate", forbidden)

        template = [
            {"func": "FilterPackets", "input": None, "output": "pkts",
             "keep": "tcp"},
            {"func": "Labels", "input": None, "output": "y"},
            {"func": "model", "model_type": "RandomForest", "input": None,
             "output": "clf"},
            {"func": "train", "input": ["clf", "pkts", "y"], "output": "m"},
        ]
        path = tmp_path / "ill_typed.json"
        path.write_text(json.dumps(template))

        rc = main(["lint", str(path), "--dataset", "F0"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "L010" in out
        assert calls == []


class TestDocumentation:
    def test_every_code_documented(self):
        text = (REPO_ROOT / "docs" / "TEMPLATES.md").read_text()
        for code in CODES:
            assert code in text, f"{code} missing from docs/TEMPLATES.md"

    def test_every_code_has_a_title(self):
        for code, title in CODES.items():
            assert code.startswith("L") and len(code) == 4
            assert title
