"""Tests for template parsing and static validation."""

import pytest

from repro.core import OPERATIONS, Pipeline, TemplateError
from repro.core.pipeline import SOURCE_NAME


def minimal_template():
    return [
        {"func": "Groupby", "input": None, "output": "flows",
         "flowid": ["connection"]},
        {"func": "ApplyAggregates", "input": ["flows"], "output": "X",
         "list": ["count", "duration"]},
    ]


class TestParsing:
    def test_minimal_template_parses(self):
        pipeline = Pipeline.from_template(minimal_template())
        assert len(pipeline.calls) == 2
        assert pipeline.output_name == "X"

    def test_empty_template_rejected(self):
        with pytest.raises(TemplateError):
            Pipeline.from_template([])

    def test_unknown_operation_rejected(self):
        with pytest.raises(TemplateError, match="unknown operation"):
            Pipeline.from_template(
                [{"func": "Explode", "input": None, "output": "x"}]
            )

    def test_missing_func_rejected(self):
        with pytest.raises(TemplateError, match="no 'func'"):
            Pipeline.from_template([{"input": None, "output": "x"}])

    def test_missing_output_rejected(self):
        with pytest.raises(TemplateError, match="no 'output'"):
            Pipeline.from_template(
                [{"func": "Groupby", "input": None, "flowid": ["5tuple"]}]
            )

    def test_missing_required_param_rejected(self):
        with pytest.raises(TemplateError, match="missing required"):
            Pipeline.from_template(
                [{"func": "Groupby", "input": None, "output": "flows"}]
            )

    def test_unknown_param_rejected(self):
        with pytest.raises(TemplateError, match="unknown parameters"):
            Pipeline.from_template(
                [
                    {"func": "Groupby", "input": None, "output": "flows",
                     "flowid": ["5tuple"], "bogus": 1}
                ]
            )

    def test_param_alias_maps_to_first_required(self):
        # the paper's templates say "param": [...fields...]
        pipeline = Pipeline.from_template(
            [
                {"func": "FieldExtract", "input": None, "output": "pkts",
                 "param": ["srcIP", "dstIP"]}
            ]
        )
        assert pipeline.calls[0].params["fields"] == ["srcIP", "dstIP"]

    def test_none_input_binds_to_source_for_packet_ops(self):
        pipeline = Pipeline.from_template(minimal_template())
        assert pipeline.calls[0].inputs == (SOURCE_NAME,)

    def test_string_input_accepted(self):
        template = minimal_template()
        template[1]["input"] = "flows"
        pipeline = Pipeline.from_template(template)
        assert pipeline.calls[1].inputs == ("flows",)


class TestDataflowValidation:
    def test_undefined_input_rejected(self):
        template = minimal_template()
        template[1]["input"] = ["nonexistent"]
        with pytest.raises(TemplateError, match="not defined"):
            Pipeline.from_template(template)

    def test_use_before_definition_rejected(self):
        template = [
            {"func": "ApplyAggregates", "input": ["flows"], "output": "X",
             "list": ["count"]},
            {"func": "Groupby", "input": None, "output": "flows",
             "flowid": ["5tuple"]},
        ]
        with pytest.raises(TemplateError, match="not defined"):
            Pipeline.from_template(template)

    def test_type_mismatch_rejected(self):
        # feeding a feature matrix into Groupby (wants packets)
        template = [
            {"func": "Groupby", "input": None, "output": "flows",
             "flowid": ["5tuple"]},
            {"func": "ApplyAggregates", "input": ["flows"], "output": "X",
             "list": ["count"]},
            {"func": "Groupby", "input": ["X"], "output": "bad",
             "flowid": ["5tuple"]},
        ]
        with pytest.raises(TemplateError, match="type"):
            Pipeline.from_template(template)

    def test_wrong_arity_rejected(self):
        template = [
            {"func": "Groupby", "input": None, "output": "flows",
             "flowid": ["5tuple"]},
            {"func": "ApplyAggregates", "input": ["flows"], "output": "X",
             "list": ["count"]},
            {"func": "Labels", "input": ["flows"], "output": "y"},
            # train wants (model, features, labels): give it two inputs
            {"func": "train", "input": ["X", "y"], "output": "m"},
        ]
        with pytest.raises(TemplateError, match="input"):
            Pipeline.from_template(template)

    def test_consumers_tracks_last_use(self):
        pipeline = Pipeline.from_template(minimal_template())
        consumers = pipeline.consumers()
        assert consumers["flows"] == 1
        assert consumers[SOURCE_NAME] == 0


class TestOperationRegistry:
    def test_roughly_thirty_operations(self):
        # the paper: "around 30 unique operations"
        assert len(OPERATIONS) >= 25

    def test_every_operation_documented(self):
        for name, operation in OPERATIONS.items():
            assert operation.description, f"{name} lacks a description"

    def test_duplicate_registration_rejected(self):
        from repro.core.operations import register_operation
        from repro.core.types import ValueType

        with pytest.raises(ValueError, match="twice"):
            register_operation("Groupby", (), ValueType.ANY)(lambda i, p: None)
