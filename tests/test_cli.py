"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_figure_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestInventoryCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "F0" in out and "P2" in out
        assert "CTU, 1-1" in out

    def test_algorithms(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "A06" in out and "Kitsune" in out

    def test_operations(self, capsys):
        assert main(["operations", "-v"]) == 0
        out = capsys.readouterr().out
        assert "Groupby" in out
        assert "-> flows" in out


class TestLintCommand:
    GOOD = [
        {"func": "Groupby", "input": None, "output": "flows",
         "flowid": ["connection"]},
        {"func": "Labels", "input": ["flows"], "output": "y"},
    ]

    def test_lint_clean_template(self, tmp_path, capsys):
        path = tmp_path / "good.json"
        path.write_text(json.dumps(self.GOOD))
        assert main(["lint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_lint_bad_template_fails(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(
            [{"func": "Teleport", "input": None, "output": "x"}]
        ))
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "L004" in out

    def test_lint_catalog_is_clean(self, capsys):
        assert main(["lint", "--catalog"]) == 0
        out = capsys.readouterr().out
        assert "16 template(s)" in out

    def test_lint_faithfulness_flag(self, tmp_path, capsys):
        path = tmp_path / "conn.json"
        path.write_text(json.dumps(self.GOOD))
        assert main(["lint", str(path), "--dataset", "F0"]) == 0
        capsys.readouterr()
        assert main(["lint", str(path), "--dataset", "P0"]) == 1
        out = capsys.readouterr().out
        assert "L016" in out

    def test_lint_nothing_to_lint(self, capsys):
        assert main(["lint"]) == 2

    def test_lint_malformed_json_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("not json {")
        assert main(["lint", str(path)]) == 1
        err = capsys.readouterr().err
        assert "broken.json" in err

    def test_lint_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.json")]) == 1

    def test_lint_python_file(self, tmp_path, capsys):
        path = tmp_path / "module.py"
        path.write_text(
            "TEMPLATE = [\n"
            "    {'func': 'Groupby', 'input': None, 'output': 'flows',\n"
            "     'flowid': ['connection']},\n"
            "    {'func': 'Labels', 'input': ['flows'], 'output': 'y'},\n"
            "]\n"
        )
        assert main(["lint", str(path), "-v"]) == 0
        out = capsys.readouterr().out
        assert "TEMPLATE" in out


class TestAuditCommand:
    def test_audit_table_lists_every_operation(self, capsys):
        from repro.core.operations import OPERATIONS

        assert main(["audit"]) == 0
        out = capsys.readouterr().out
        for name in OPERATIONS:
            assert name in out
        assert "seeded-stochastic" in out  # Downsample
        assert "0 stateful" in out

    def test_audit_json_payload(self, capsys):
        assert main(["audit", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["stateful"] == 0
        by_name = {
            entry["operation"]: entry for entry in payload["operations"]
        }
        downsample = by_name["Downsample"]
        assert downsample["purity"] == "seeded-stochastic"
        assert downsample["seed_params"] == ["seed"]
        assert downsample["cacheable"] is True

    def test_audit_json_is_deterministic(self, capsys):
        assert main(["audit", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [entry["operation"] for entry in payload["operations"]]
        assert names == sorted(names)
        for entry in payload["operations"]:
            assert entry["seed_params"] == sorted(entry["seed_params"])
            keys = [
                (f["line"], f["kind"], f["detail"])
                for f in entry["findings"]
            ]
            assert keys == sorted(keys)
        capsys.readouterr()
        assert main(["audit", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == payload

    def test_audit_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "audit.json"
        assert main(["audit", "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["summary"]["total"] == len(payload["operations"])

    def test_audit_strict_clean_registry_passes(self, capsys):
        assert main(["audit", "--strict"]) == 0

    def test_audit_strict_fails_on_stateful_op(self, capsys):
        from repro.core.operations import OPERATIONS, register_operation
        from repro.core.types import ValueType

        def _bad(inputs, params):
            inputs[0].sort()
            return inputs[0]

        register_operation(
            "AuditFixture", (ValueType.PACKETS,), ValueType.PACKETS
        )(_bad)
        try:
            assert main(["audit", "--strict", "-v"]) == 1
            captured = capsys.readouterr()
            assert "AuditFixture" in captured.err
            assert "L021" in captured.out
            assert "mutates" in captured.out  # -v shows finding detail
        finally:
            OPERATIONS.pop("AuditFixture", None)


class TestVectorizeCommand:
    def test_table_lists_every_operation(self, capsys):
        from repro.core.operations import OPERATIONS

        assert main(["vectorize"]) == 0
        out = capsys.readouterr().out
        for name in OPERATIONS:
            assert name in out
        assert "elementwise" in out
        assert "windowed-sequential" in out

    def test_json_payload(self, capsys):
        assert main(["vectorize", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        summary = payload["summary"]
        assert summary["opaque"] == 0
        assert summary["errors"] == 0
        assert summary["batchable"] == 5
        by_name = {
            entry["operation"]: entry for entry in payload["operations"]
        }
        assert by_name["ProtocolOneHot"]["batchable"] is True
        assert by_name["SortByTime"]["verdict"] == "windowed-sequential"

    def test_json_is_byte_deterministic(self, capsys):
        assert main(["vectorize", "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["vectorize", "--json"]) == 0
        assert capsys.readouterr().out == first

    def test_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "vectorize.json"
        assert main(["vectorize", "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["summary"]["total"] == len(payload["operations"])

    def test_catalog_attaches_fingerprint_verdicts(self, capsys):
        assert main(["vectorize", "--json", "--catalog"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "A14" in payload["catalog"]
        for fingerprints in payload["catalog"].values():
            for entry in fingerprints.values():
                assert set(entry) == {"func", "verdict"}

    def test_strict_clean_registry_passes(self, capsys):
        assert main(["vectorize", "--strict"]) == 0

    def test_strict_fails_on_verdict_drift(self, capsys):
        import numpy as np

        from repro.core.operations import (
            OPERATIONS,
            register_batch,
            register_operation,
        )
        from repro.core.types import ValueType

        def _drifted(inputs, params):
            order = np.argsort(inputs[0].ts)
            return inputs[0].length[order].astype(
                np.float64
            ).reshape(-1, 1)

        register_operation(
            "VectorizeFixture", (ValueType.PACKETS,), ValueType.FEATURES
        )(_drifted)
        register_batch("VectorizeFixture")(_drifted)
        try:
            assert main(["vectorize", "--strict"]) == 1
            captured = capsys.readouterr()
            assert "verdict-drift" in captured.err
            assert "DRIFT" in captured.out
        finally:
            OPERATIONS.pop("VectorizeFixture", None)


class TestStreamableCommand:
    def test_table_lists_every_operation(self, capsys):
        from repro.core.operations import OPERATIONS

        assert main(["streamable"]) == 0
        out = capsys.readouterr().out
        for name in OPERATIONS:
            assert name in out
        assert "stateless" in out
        assert "batch-only" in out

    def test_json_payload(self, capsys):
        assert main(["streamable", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        summary = payload["summary"]
        assert summary["opaque"] == 0
        assert summary["errors"] == 0
        by_name = {
            entry["operation"]: entry for entry in payload["operations"]
        }
        assert by_name["KitsuneFeatures"]["verdict"] == "prefix-mergeable"
        assert by_name["KitsuneFeatures"]["stream_fn"] is True
        assert by_name["SortByTime"]["verdict"] == "batch-only"

    def test_json_is_byte_deterministic(self, capsys):
        assert main(["streamable", "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["streamable", "--json"]) == 0
        assert capsys.readouterr().out == first

    def test_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "streamable.json"
        assert main(["streamable", "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["summary"]["total"] == len(payload["operations"])

    def test_catalog_reports_per_template_streamability(self, capsys):
        assert main(["streamable", "--json", "--catalog"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "A14" in payload["catalog"]
        for entry in payload["catalog"].values():
            assert set(entry) == {"steps", "streamable"}
            for step in entry["steps"]:
                assert set(step) == {
                    "func", "verdict", "state_bound", "refusal"
                }

    def test_strict_clean_registry_passes(self, capsys):
        assert main(["streamable", "--strict"]) == 0

    def test_strict_fails_on_declaration_drift(self, capsys):
        import numpy as np

        from repro.core.operations import (
            OPERATIONS,
            register_operation,
        )
        from repro.core.types import ValueType

        def _drifted(inputs, params):
            order = np.argsort(inputs[0].ts)
            return inputs[0].length[order].astype(
                np.float64
            ).reshape(-1, 1)

        register_operation(
            "StreamableFixture", (ValueType.PACKETS,),
            ValueType.FEATURES, stream="stateless",
        )(_drifted)
        try:
            assert main(["streamable", "--strict"]) == 1
            captured = capsys.readouterr()
            assert "L045" in captured.err
        finally:
            OPERATIONS.pop("StreamableFixture", None)


class TestRacesCommand:
    def test_table_lists_operations_and_modules(self, capsys):
        from repro.core.operations import OPERATIONS

        assert main(["races"]) == 0
        out = capsys.readouterr().out
        for name in OPERATIONS:
            assert name in out
        assert "session-confined" in out
        assert "repro.obs.metrics" in out
        assert "concurrent-safe" in out

    def test_json_payload(self, capsys):
        assert main(["races", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        summary = payload["summary"]
        assert summary["total"] == len(payload["operations"])
        assert summary["racy"] == 0
        assert summary["errors"] == 0
        modules = {m["module"] for m in payload["modules"]}
        assert "repro.serve.daemon" in modules
        assert "repro.obs.spans" in modules

    def test_json_is_byte_deterministic(self, capsys):
        assert main(["races", "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["races", "--json"]) == 0
        assert capsys.readouterr().out == first

    def test_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "races.json"
        assert main(["races", "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["summary"]["concurrent_safe"] == (
            payload["summary"]["total"]
        )

    def test_strict_clean_registry_passes(self, capsys):
        assert main(["races", "--strict"]) == 0

    def test_strict_fails_on_racy_operation(self, capsys):
        from repro.core.operations import (
            OPERATIONS,
            register_operation,
        )
        from repro.core.types import ValueType

        def _racy(inputs, params):
            _CLI_RACE_SINK["last"] = len(inputs[0])
            return inputs[0].length

        register_operation(
            "RacyCliFixture", (ValueType.PACKETS,),
            ValueType.FEATURES,
        )(_racy)
        try:
            assert main(["races", "--strict"]) == 1
            captured = capsys.readouterr()
            assert "racy operation" in captured.err
        finally:
            OPERATIONS.pop("RacyCliFixture", None)

    def test_verbose_shows_write_evidence(self, capsys):
        from repro.core.operations import (
            OPERATIONS,
            register_operation,
        )
        from repro.core.types import ValueType

        def _racy(inputs, params):
            _CLI_RACE_SINK["verbose"] = 1
            return inputs[0].length

        register_operation(
            "VerboseRaceFixture", (ValueType.PACKETS,),
            ValueType.FEATURES,
        )(_racy)
        try:
            assert main(["races", "-v"]) == 0
            out = capsys.readouterr().out
            assert "shared write -- _CLI_RACE_SINK" in out
        finally:
            OPERATIONS.pop("VerboseRaceFixture", None)


#: write target for the races fixtures above -- the analyzer parses
#: this file and must see a module-global binding
_CLI_RACE_SINK: dict = {}


class TestEvaluationCommands:
    def test_evaluate_same_dataset(self, capsys):
        assert main(["evaluate", "A14", "F0"]) == 0
        out = capsys.readouterr().out
        assert "precision" in out
        assert "per attack" in out

    def test_matrix_and_figure(self, tmp_path, capsys):
        results = tmp_path / "results.json"
        csv = tmp_path / "results.csv"
        assert main([
            "matrix", "--algorithms", "A13,A14", "--datasets", "F0,F1",
            "--out", str(results), "--csv", str(csv),
        ]) == 0
        payload = json.loads(results.read_text())
        assert len(payload) == 2 * (2 + 2)  # 2 algos x (2 same + 2 cross)
        assert csv.exists()
        capsys.readouterr()
        assert main(["figure", "fig10", "--results", str(results)]) == 0
        out = capsys.readouterr().out
        assert "F0" in out and "F1" in out

    def test_profile(self, capsys):
        assert main(["profile", "A14", "F0"]) == 0
        out = capsys.readouterr().out
        assert "Groupby" in out
        assert "total:" in out


class TestFaultTolerantMatrix:
    def test_run_matrix_alias(self, tmp_path, capsys):
        results = tmp_path / "results.json"
        assert main(["run-matrix", "--algorithms", "A14",
                     "--datasets", "F0", "--out", str(results)]) == 0
        payload = json.loads(results.read_text())
        assert isinstance(payload, list) and len(payload) == 1

    def test_bad_fault_spec_exits_2(self, tmp_path, capsys):
        assert main([
            "run-matrix", "--algorithms", "A14", "--datasets", "F0",
            "--faults", "nowhere:0.5", "--out", str(tmp_path / "r.json"),
        ]) == 2
        assert "unknown fault site" in capsys.readouterr().err

    def test_chaos_then_resume_heals(self, tmp_path, capsys):
        journal = tmp_path / "chaos.jsonl"
        results = tmp_path / "results.json"
        assert main([
            "run-matrix", "--algorithms", "A14", "--datasets", "F0,F1",
            "--keep-going", "--faults", "featurize:#1",
            "--checkpoint", str(journal), "--out", str(results),
        ]) == 0
        out = capsys.readouterr().out
        assert "fault injection active" in out
        assert "3 evaluations, 1 failure(s)" in out
        payload = json.loads(results.read_text())
        assert len(payload["results"]) == 3
        assert payload["failures"][0]["phase"] == "featurize"
        assert payload["failures"][0]["error_type"] == "FaultInjected"

        healed = tmp_path / "healed.json"
        assert main([
            "run-matrix", "--algorithms", "A14", "--datasets", "F0,F1",
            "--keep-going", "--resume", str(journal), "--retry-failed",
            "--out", str(healed),
        ]) == 0
        assert "4 evaluations ->" in capsys.readouterr().out
        payload = json.loads(healed.read_text())
        assert isinstance(payload, list) and len(payload) == 4

    def test_retries_absorb_transient_fault(self, tmp_path, capsys):
        results = tmp_path / "results.json"
        assert main([
            "run-matrix", "--algorithms", "A14", "--datasets", "F0,F1",
            "--retries", "1", "--faults", "featurize:#1",
            "--out", str(results),
        ]) == 0
        payload = json.loads(results.read_text())
        assert isinstance(payload, list) and len(payload) == 4


class TestTemplateCommands:
    def test_template_write_and_run(self, tmp_path, capsys):
        out_file = tmp_path / "t.json"
        assert main(["template", "--starter", "connection-rf",
                     "--out", str(out_file)]) == 0
        assert out_file.exists()
        capsys.readouterr()
        assert main(["run-template", str(out_file), "F0"]) == 0
        out = capsys.readouterr().out
        assert "metrics" in out
        assert "total:" in out

    def test_run_template_parallel(self, tmp_path, capsys):
        out_file = tmp_path / "t.json"
        assert main(["template", "--starter", "connection-rf",
                     "--out", str(out_file)]) == 0
        capsys.readouterr()
        assert main(["run-template", str(out_file), "F0",
                     "--parallel", "2"]) == 0
        out = capsys.readouterr().out
        assert "metrics" in out


class TestPlanCommand:
    def test_plan_table(self, capsys):
        assert main(["plan", "--algorithms", "A13,A14",
                     "--datasets", "F0,F1"]) == 0
        out = capsys.readouterr().out
        assert "Groupby" in out
        assert "shared stage(s)" in out

    def test_plan_lint_clean(self, capsys):
        assert main(["plan", "--algorithms", "A13,A14",
                     "--datasets", "F0", "--lint", "--strict"]) == 0
        err = capsys.readouterr().err
        assert "0 error(s)" in err

    def test_plan_json_save_and_verify(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        assert main(["plan", "--algorithms", "A13,A14",
                     "--datasets", "F0,F1", "--json",
                     "--out", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithms"] == ["A13", "A14"]
        assert payload["stages"]
        assert json.loads(path.read_text()) == payload
        assert main(["plan", "--verify", str(path)]) == 0

    def test_plan_verify_drift_fails(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        main(["plan", "--algorithms", "A13", "--datasets", "F0",
              "--out", str(path)])
        capsys.readouterr()
        payload = json.loads(path.read_text())
        payload["template_fingerprints"]["A13"] = "0" * 64
        path.write_text(json.dumps(payload))
        assert main(["plan", "--verify", str(path)]) == 1
        assert "L033" in capsys.readouterr().err

    def test_plan_dot(self, capsys):
        assert main(["plan", "--algorithms", "A13",
                     "--datasets", "F0", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")

    def test_plan_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["plan", "--verify", str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_matrix_with_auto_plan(self, tmp_path, capsys):
        results = tmp_path / "results.json"
        assert main(["matrix", "--algorithms", "A13,A14",
                     "--datasets", "F0", "--plan", "auto",
                     "--out", str(results)]) == 0
        out = capsys.readouterr().out
        assert "2 evaluations" in out
        assert len(json.loads(results.read_text())) == 2

    def test_matrix_with_bad_plan_file_exits_2(self, tmp_path, capsys):
        assert main(["matrix", "--algorithms", "A13",
                     "--datasets", "F0",
                     "--plan", str(tmp_path / "nope.json"),
                     "--out", str(tmp_path / "r.json")]) == 2
        assert "bad execution plan" in capsys.readouterr().err


class TestObservabilityCommands:
    def test_evaluate_trace_exports_parseable_jsonl(self, tmp_path, capsys):
        from repro.obs import read_trace

        trace = tmp_path / "out.jsonl"
        assert main(["evaluate", "A14", "F0", "--trace", str(trace)]) == 0
        capsys.readouterr()
        events = read_trace(trace)
        spans = [e for e in events if e["kind"] == "span"]
        names = {e["name"] for e in spans}
        assert {"evaluate", "featurize", "train", "test", "run"} <= names
        # per-step wall times sum to within each run span's duration
        for run in (e for e in spans if e["name"] == "run"):
            step_total = sum(
                e["attrs"].get("wall_seconds", 0.0) for e in spans
                if e["name"].startswith("step:")
                and e["parent_id"] == run["span_id"]
            )
            assert step_total <= run["duration_seconds"]

    def test_trace_flag_detached_after_run(self, tmp_path, capsys):
        trace = tmp_path / "out.jsonl"
        assert main(["evaluate", "A14", "F0", "--trace", str(trace)]) == 0
        size = trace.stat().st_size
        capsys.readouterr()
        assert main(["evaluate", "A14", "F0"]) == 0
        assert trace.stat().st_size == size  # sink no longer attached

    def test_trace_renders_saved_file(self, tmp_path, capsys):
        trace = tmp_path / "out.jsonl"
        main(["evaluate", "A14", "F0", "--trace", str(trace)])
        capsys.readouterr()
        assert main(["trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "evaluate" in out
        assert "└─" in out

    def test_trace_runs_a_command(self, capsys):
        assert main(["trace", "evaluate", "A14", "F0"]) == 0
        out = capsys.readouterr().out
        assert "precision" in out  # the wrapped command's own output
        assert "step:Groupby" in out

    def test_trace_without_arguments_errors(self, capsys):
        assert main(["trace"]) == 2

    def test_trace_rejects_malformed_file(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("nope\n")
        assert main(["trace", str(path)]) == 1
        assert "error" in capsys.readouterr().err

    def test_metrics_reports_cache_hits_after_matrix(self, tmp_path, capsys):
        out = tmp_path / "r.json"
        assert main(["metrics", "matrix", "--algorithms", "A13,A14",
                     "--datasets", "F0,F1", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "# TYPE engine_cache_hits_total counter" in text
        hits = next(
            int(line.split()[1]) for line in text.splitlines()
            if line.startswith("engine_cache_hits_total ")
        )
        assert hits > 0
        assert "bench_evaluations_completed_total" in text

    def test_metrics_alone_exits_zero(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE" in out or "(no metrics recorded)" in out


class TestReportAndExport:
    def test_report_from_results(self, tmp_path, capsys):
        results = tmp_path / "results.json"
        main(["matrix", "--algorithms", "A14", "--datasets", "F0,F1",
              "--out", str(results)])
        capsys.readouterr()
        report_path = tmp_path / "report.md"
        assert main(["report", "--results", str(results),
                     "--out", str(report_path)]) == 0
        text = report_path.read_text()
        assert "# Lumen benchmark report" in text
        assert "A14" in text

    def test_export(self, tmp_path, capsys):
        assert main(["export", "F5", "--directory", str(tmp_path)]) == 0
        assert (tmp_path / "F5.pcap").exists()
        assert (tmp_path / "F5.labels.csv").exists()


class TestInspectAndDiff:
    def test_inspect(self, capsys):
        assert main(["inspect", "F5"]) == 0
        out = capsys.readouterr().out
        assert "packets" in out
        assert "malicious" in out

    def test_diff_identical_is_clean(self, tmp_path, capsys):
        results = tmp_path / "r.json"
        main(["matrix", "--algorithms", "A13", "--datasets", "F0",
              "--out", str(results)])
        capsys.readouterr()
        assert main(["diff", str(results), str(results)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_detects_change(self, tmp_path, capsys):
        import json

        results = tmp_path / "r.json"
        main(["matrix", "--algorithms", "A13", "--datasets", "F0",
              "--out", str(results)])
        payload = json.loads(results.read_text())
        payload[0]["precision"] = 0.01
        mutated = tmp_path / "mutated.json"
        mutated.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["diff", str(results), str(mutated)]) == 1
        assert "down" in capsys.readouterr().out


def perf_payload(rate):
    """A minimal synthetic BENCH_perf payload for the perf verbs."""
    return {
        "benchmark": "perf-baseline",
        "provenance": {"schema": 2, "git_sha": "abc",
                       "timestamp": "2026-08-08T00:00:00+00:00",
                       "workload_fingerprint": "f" * 64},
        "featurize": {
            "scalar_packets_per_sec": rate / 2,
            "vectorized_packets_per_sec": rate,
            "speedup": 2.0,
        },
    }


class TestPerfTrajectoryCommands:
    def write(self, tmp_path, name, rate):
        path = tmp_path / name
        path.write_text(json.dumps(perf_payload(rate)))
        return str(path)

    def test_perf_diff_clean_exits_zero(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.json", 100_000.0)
        assert main(["perf-diff", a, a]) == 0
        assert "perf-diff: clean" in capsys.readouterr().out

    def test_perf_diff_regression_exits_one_and_names_series(
        self, tmp_path, capsys
    ):
        before = self.write(tmp_path, "a.json", 100_000.0)
        after = self.write(tmp_path, "b.json", 70_000.0)  # -30%
        assert main(["perf-diff", before, after]) == 1
        out = capsys.readouterr().out
        assert "featurize/vectorized_packets_per_sec" in out
        assert "REGRESSED" in out

    def test_perf_diff_threshold_flag(self, tmp_path, capsys):
        before = self.write(tmp_path, "a.json", 100_000.0)
        after = self.write(tmp_path, "b.json", 70_000.0)
        assert main(["perf-diff", before, after, "--threshold", "0.5"]) == 0

    def test_perf_diff_json_output(self, tmp_path, capsys):
        before = self.write(tmp_path, "a.json", 100_000.0)
        after = self.write(tmp_path, "b.json", 70_000.0)
        assert main(["perf-diff", before, after, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["has_regressions"] is True
        assert ("featurize/vectorized_packets_per_sec"
                in payload["regressions"])

    def test_perf_diff_missing_file_exits_two(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.json", 1.0)
        assert main(["perf-diff", a, str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_perf_history_table(self, tmp_path, capsys):
        history = tmp_path / "h.jsonl"
        with history.open("w") as handle:
            for rate in (90_000.0, 110_000.0):
                handle.write(json.dumps(perf_payload(rate)) + "\n")
        assert main(["perf-history", "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "110,000" in out
        assert "2026-08-08" in out

    def test_perf_history_series_and_limit(self, tmp_path, capsys):
        history = tmp_path / "h.jsonl"
        with history.open("w") as handle:
            for rate in (1.0, 2.0, 3.0):
                handle.write(json.dumps(perf_payload(rate)) + "\n")
        assert main(["perf-history", "--history", str(history),
                     "--series", "featurize", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "featurize/vectorized_packets_per_sec" in out

    def test_perf_history_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["perf-history", "--history",
                     str(tmp_path / "nope.jsonl")]) == 2

    def test_bench_perf_appends_history(self, tmp_path, capsys):
        out = tmp_path / "p.json"
        history = tmp_path / "h.jsonl"
        assert main(["bench-perf", "--repeat", "1", "--no-cells",
                     "--out", str(out), "--history", str(history)]) == 0
        assert "trajectory appended" in capsys.readouterr().out
        lines = [line for line in history.read_text().splitlines()
                 if line.strip()]
        assert len(lines) == 1
        assert json.loads(lines[0])["provenance"]["schema"] == 2

    def test_bench_perf_no_history(self, tmp_path, capsys):
        out = tmp_path / "p.json"
        history = tmp_path / "h.jsonl"
        assert main(["bench-perf", "--repeat", "1", "--no-cells",
                     "--out", str(out), "--history", str(history),
                     "--no-history"]) == 0
        assert not history.exists()


class TestMatrixProgressFlags:
    def test_progress_file_journals_every_cell(self, tmp_path, capsys):
        progress_file = tmp_path / "p.jsonl"
        assert main(["matrix", "--algorithms", "A14", "--datasets",
                     "F0,F1", "--out", str(tmp_path / "r.json"),
                     "--progress-file", str(progress_file)]) == 0
        events = [json.loads(line)
                  for line in progress_file.read_text().splitlines()
                  if line.strip()]
        assert len(events) == 4
        assert [e["done"] for e in events] == [1, 2, 3, 4]
        assert events[-1]["done"] == events[-1]["total"] == 4
        assert all(e["kind"] == "progress" for e in events)

    def test_progress_flag_renders_to_stderr(self, tmp_path, capsys):
        assert main(["matrix", "--algorithms", "A14", "--datasets", "F0",
                     "--out", str(tmp_path / "r.json"),
                     "--progress"]) == 0
        err = capsys.readouterr().err
        assert "cells 1/1" in err


class TestServeCommand:
    """The ``repro serve`` daemon entry point and its status probe."""

    @pytest.fixture(autouse=True)
    def _clean_state(self):
        from repro.faults import uninstall
        from repro.obs import get_metrics

        get_metrics().reset()
        uninstall()
        yield
        get_metrics().reset()
        uninstall()

    def test_requires_a_dataset_or_status(self, capsys):
        assert main(["serve"]) == 2
        assert "dataset id is required" in capsys.readouterr().err

    def test_unknown_dataset_rejected(self, capsys):
        assert main(["serve", "NOPE"]) == 2

    def test_bad_fault_spec_is_a_usage_error(self, capsys):
        assert main(["serve", "F0", "--faults", "serve_chunk:0.5"]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'score_chunk'?" in err

    def test_bounded_virtual_run(self, tmp_path, capsys):
        status_file = tmp_path / "status.json"
        assert main([
            "serve", "F0", "--virtual-time",
            "--chunk-seconds", "5", "--max-chunks", "3",
            "--status-file", str(status_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "served 3 chunk(s)" in out
        status = json.loads(status_file.read_text())
        assert status["state"] == "stopped"
        assert status["chunks_scored"] == 3

    def test_concurrent_sessions_verify_against_offline(
        self, tmp_path, capsys
    ):
        assert main([
            "serve", "F0", "--virtual-time", "--outputs", "X,y",
            "--chunk-seconds", "10", "--sessions", "2",
            "--verify-offline",
        ]) == 0
        out = capsys.readouterr().out
        assert "byte-equal" in out
        assert "MISMATCH" not in out

    def test_chaos_run_verifies_against_offline(self, tmp_path, capsys):
        quarantine = tmp_path / "quarantine.jsonl"
        results = tmp_path / "results.jsonl"
        assert main([
            "serve", "F1", "--virtual-time", "--outputs", "X,y",
            "--chunk-seconds", "10", "--retries", "3",
            "--faults", "score_chunk:0.3", "--fault-seed", "7",
            "--quarantine", str(quarantine),
            "--out", str(results),
            "--verify-offline",
        ]) == 0
        out = capsys.readouterr().out
        assert "fault injection active" in out
        assert "byte-equal" in out
        assert "MISMATCH" not in out
        records = [json.loads(line)
                   for line in results.read_text().splitlines()
                   if line.strip()]
        assert records and all(r["kind"] == "chunk" for r in records)

    def test_status_probe_missing_file(self, tmp_path, capsys):
        assert main(["serve", "--status",
                     str(tmp_path / "absent.json")]) == 2
        assert "no status file" in capsys.readouterr().err

    def test_status_probe_alive_and_stopped(self, tmp_path, capsys):
        from repro.serve import ServeStatus

        path = tmp_path / "status.json"
        ServeStatus(state="serving", chunks_scored=4).write(path)
        assert main(["serve", "--status", str(path)]) == 0
        assert "serving" in capsys.readouterr().out
        ServeStatus(state="stopped").write(path)
        assert main(["serve", "--status", str(path)]) == 3

    def test_serve_metrics_surface_in_exposition(self, capsys):
        assert main(["metrics", "serve", "F0", "--virtual-time",
                     "--chunk-seconds", "5", "--max-chunks", "2"]) == 0
        out = capsys.readouterr().out
        assert "serve_chunks_scored_total 2" in out
        assert "engine_uptime_seconds" in out
