#!/usr/bin/env python3
"""Online detection at the gateway (the paper's deployment story).

Network gateways are the natural chokepoint for IoT traffic.  This
example trains Kitsune's online detector on a day of benign traffic,
then replays an attacked capture chunk by chunk -- the way a live
capture loop would deliver packets -- and raises alerts as the SYN
flood starts.  The incremental feature state persists across chunks,
so detection latency is per-packet, not per-batch.

Run with:  python examples/online_gateway.py
"""

import numpy as np

from repro.core.streaming import StreamingKitsune, chunked
from repro.net.addresses import int_to_ip
from repro.traffic import AttackSpec, NetworkScenario

DEVICES = {"camera": 1, "thermostat": 1, "smart_plug": 1, "smart_hub": 1}


def main() -> None:
    # day 0: benign-only capture, used to learn "normal"
    benign = NetworkScenario(
        name="day0", device_counts=DEVICES, duration=180.0, seed=71
    ).generate()
    training_sample = benign.select(np.arange(0, len(benign), 3))
    print(f"training on benign capture: {training_sample.summary()}")
    detector = StreamingKitsune.train(training_sample, n_epochs=15, seed=0)

    # day 1: same network, but a SYN flood hits mid-capture
    attacked = NetworkScenario(
        name="day1", device_counts=DEVICES, duration=180.0, seed=72,
        attacks=(AttackSpec("dos_syn_flood", 0.4, 0.7, intensity=0.3),),
    ).generate()
    print(f"replaying attacked capture: {attacked.summary()}")
    print()
    print(f"{'window':>12} {'packets':>8} {'alerts':>7} {'alert rate':>11}")
    first_alert = None
    for chunk in chunked(attacked, 15.0):
        verdicts = detector.process_chunk(chunk)
        alerts = [v for v in verdicts if v.is_anomalous]
        start = chunk.ts.min()
        print(f"{start:>7.0f}s-{start + 15:>3.0f}s {len(chunk):>8} "
              f"{len(alerts):>7} {len(alerts) / max(len(chunk), 1):>10.1%}")
        if alerts and first_alert is None:
            first_alert = alerts[0]
    print()
    if first_alert is not None:
        print(
            f"first alert at t={first_alert.timestamp:.2f}s "
            f"({int_to_ip(first_alert.src_ip)} -> "
            f"{int_to_ip(first_alert.dst_ip)}, score "
            f"{first_alert.score:.3f})"
        )
        attack_start = 180.0 * 0.4
        print(f"attack window opened at t={attack_start:.0f}s")


if __name__ == "__main__":
    main()
