#!/usr/bin/env python3
"""Section 6: extending the framework beyond anomaly detection.

"Our framework can be used to develop and evaluate any ML algorithm on
network data.  For example, if we were to extend our framework to do
ML-based device classification, we would only need to add a new dataset
... and the rest of the functions/modules would be used directly."

This example does exactly that: same operations, same engine, same
models -- but the label operation is ``DeviceLabels`` (which device
model generated the traffic?) instead of malicious/benign.

Run with:  python examples/device_classification.py
"""

import numpy as np

from repro.core import ExecutionEngine, Pipeline
from repro.ml import accuracy_score
from repro.ml.model_selection import stratified_split_indices
from repro.traffic import NetworkScenario
from repro.traffic.network import NetworkScenario as _Scenario

DEVICE_CLASSES = ["camera", "thermostat", "smart_plug", "smart_hub",
                  "voice_assistant"]


def main() -> None:
    # a benign-only smart home; the task is device fingerprinting
    scenario = NetworkScenario(
        name="fingerprinting",
        device_counts={model: 2 for model in DEVICE_CLASSES},
        duration=400.0,
        seed=21,
    )
    table = scenario.generate()
    devices, _, _ = scenario._allocate_hosts(
        np.random.default_rng(scenario.seed)
    )
    device_map = {
        device.ip: DEVICE_CLASSES.index(device.model) for device in devices
    }
    print(f"trace: {table.summary()}")
    print(f"devices: {len(device_map)} across {len(DEVICE_CLASSES)} classes")

    # the SAME flow features the IDS algorithms use, different labels
    template = [
        {"func": "Groupby", "input": None, "output": "flows",
         "flowid": ["connection"]},
        {"func": "FlowDiscriminators", "input": ["flows"], "output": "X"},
        {"func": "DeviceLabels", "input": ["flows"], "output": "y",
         "device_map": device_map},
        {"func": "model", "model_type": "RandomForest", "input": None,
         "output": "clf", "params": {"n_estimators": 40}},
    ]
    engine = ExecutionEngine(track_memory=False)
    out = engine.run(Pipeline.from_template(template), table,
                     outputs=["X", "y", "clf"])
    X, y, model = out["X"], out["y"], out["clf"]
    known = y >= 0  # drop flows from shared servers
    X, y = X[known], y[known]
    train_idx, test_idx = stratified_split_indices(y, seed=0)
    model.fit(X[train_idx], y[train_idx])
    predictions = model.predict(X[test_idx])
    accuracy = accuracy_score(y[test_idx], predictions)
    print(f"\nper-flow device classification accuracy: {accuracy:.3f} "
          f"({len(DEVICE_CLASSES)} classes, chance = "
          f"{1 / len(DEVICE_CLASSES):.2f})")
    for class_id, name in enumerate(DEVICE_CLASSES):
        mask = y[test_idx] == class_id
        if mask.any():
            class_accuracy = accuracy_score(
                y[test_idx][mask] == class_id, predictions[mask] == class_id
            )
            print(f"  {name:<16} {mask.sum():>4} flows  "
                  f"accuracy {class_accuracy:.3f}")


if __name__ == "__main__":
    main()
