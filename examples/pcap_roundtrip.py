#!/usr/bin/env python3
"""The network substrate end to end: scenario -> pcap -> flows.

Demonstrates that the synthetic traces are real packets: a generated
scenario is written to a classic ``.pcap`` file (readable by Wireshark/
tcpdump), read back through the pcap parser, and assembled into
connections that match the original trace.

Run with:  python examples/pcap_roundtrip.py
"""

import tempfile
from pathlib import Path

from repro.flows import assemble_connections
from repro.net import PcapReader, write_pcap
from repro.net.table import PacketTable
from repro.traffic import AttackSpec, NetworkScenario


def main() -> None:
    scenario = NetworkScenario(
        name="demo-home",
        device_counts={"camera": 1, "thermostat": 1, "smart_plug": 1},
        duration=60.0,
        seed=42,
        attacks=(AttackSpec("port_scan", 0.4, 0.7, intensity=0.1),),
    )
    table = scenario.generate()
    print(f"generated trace : {table.summary()}")

    # ---- write real pcap bytes -----------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "demo.pcap"
        packets = table.to_packets()
        write_pcap(path, packets)
        size_kib = path.stat().st_size / 1024
        print(f"wrote           : {path.name} ({size_kib:.0f} KiB, "
              f"{len(packets)} packets)")

        # ---- read it back through the parser ----------------------------
        reader = PcapReader(path)
        loaded = list(reader)
        print(f"read back       : {len(loaded)} packets, "
              f"link type {reader.link_type.name}")

        # labels don't survive the wire (pcap has no label field), so
        # re-attach them from the original trace for the comparison
        for original, parsed in zip(packets, loaded):
            parsed.label = original.label
            parsed.attack = original.attack
        rebuilt = PacketTable.from_packets(loaded)
        # pcap stores microsecond timestamps, so compare time with that
        # tolerance and everything else exactly
        import numpy as np

        ts_close = np.allclose(table.ts, rebuilt.ts, atol=1e-6)
        rebuilt.columns["ts"] = table.ts
        print(f"tables equal    : {table.equals(rebuilt)} "
              f"(timestamps within 1us: {ts_close})")

    # ---- flow assembly --------------------------------------------------
    connections = assemble_connections(table)
    print(f"connections     : {connections.summary()}")
    malicious = connections.select(connections.labels == 1)
    scanned_ports = malicious.key_columns["dst_port"]
    print(f"scanned ports   : {len(set(scanned_ports.tolist()))} distinct "
          f"destination ports across {len(malicious)} malicious connections")


if __name__ == "__main__":
    main()
