#!/usr/bin/env python3
"""Quickstart: evaluate a catalog algorithm on a benchmark dataset.

This walks the three things a new user does first:

1. load a dataset from the benchmarking suite;
2. run one of the 16 reproduced algorithms on it (same-dataset
   train/test split, the paper's first evaluation mode);
3. inspect the per-operation profile the execution engine recorded.

Run with:  python examples/quickstart.py
"""

from repro.algorithms import build_algorithm
from repro.bench import evaluate_same_dataset
from repro.core import ExecutionEngine, Pipeline
from repro.datasets import DATASETS, load_dataset


def main() -> None:
    # --- 1. the dataset -------------------------------------------------
    dataset_id = "F4"  # the CTU 1-1 (IoT botnet) profile
    spec = DATASETS[dataset_id]
    table = load_dataset(dataset_id)
    print(f"dataset {dataset_id}: {spec.title}")
    print(f"  stands in for : {spec.stands_in_for}")
    print(f"  trace         : {table.summary()}")
    print()

    # --- 2. one algorithm, one evaluation -------------------------------
    algorithm = build_algorithm("A10")  # SmartDetect
    print(f"algorithm {algorithm.algorithm_id}: {algorithm.name}")
    print(f"  from          : {algorithm.paper}")
    print(f"  granularity   : {algorithm.granularity.name}")
    result = evaluate_same_dataset(algorithm, dataset_id)
    print(f"  precision     : {result.precision:.3f}")
    print(f"  recall        : {result.recall:.3f}")
    print(f"  units         : {result.n_train} train / {result.n_test} test")
    print()

    # --- 3. what the engine did under the hood --------------------------
    engine = ExecutionEngine(track_memory=True)
    pipeline = Pipeline.from_template(algorithm.full_template())
    out = engine.run(pipeline, table, outputs=["metrics"],
                     source_token=dataset_id)
    print("full-template metrics (train == test, sanity only):")
    print(f"  {out['metrics']}")
    print()
    print("per-operation profile:")
    print(engine.last_report.render())


if __name__ == "__main__":
    main()
