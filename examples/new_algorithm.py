#!/usr/bin/env python3
"""Prototyping a brand-new algorithm with the template language.

This is the paper's Figure 4 workflow: describe a detection algorithm
as a template, let the engine validate and run it, and compare it
head-to-head with the state of the art on the same dataset -- reusing
the cached Groupby/aggregate work where pipelines overlap.

The toy algorithm here ("portwatch") flags connections by combining
port-entropy aggregates with Zeek-style state features and a random
forest.

Run with:  python examples/new_algorithm.py
"""

from repro.algorithms import AlgorithmSpec, build_algorithm
from repro.bench import BenchmarkRunner
from repro.core import ExecutionEngine, Pipeline, TemplateError
from repro.flows import Granularity

# ---- 1. write the template (the Figure 4 format) -----------------------
MY_FEATURES = (
    {"func": "FieldExtract", "input": None, "output": "validated",
     "param": ["srcIP", "dstIP", "TCPFlags", "packetLength"]},
    {"func": "Groupby", "input": ["validated"], "output": "flows",
     "flowid": ["connection"]},
    {"func": "ApplyAggregates", "input": ["flows"], "output": "ports",
     "list": ["entropy:src_port", "entropy:dst_port", "nunique:dst_port",
              "flag_frac:SYN", "flag_frac:RST"]},
    {"func": "ZeekConnLog", "input": ["flows"], "output": "states"},
    {"func": "ConcatFeatures", "input": ["ports", "states"], "output": "X"},
    {"func": "Labels", "input": ["flows"], "output": "y"},
)

MY_MODEL = (
    {"func": "model", "model_type": "RandomForest", "input": None,
     "output": "raw", "params": {"n_estimators": 40}},
    {"func": "WithScaler", "input": ["raw"], "output": "clf"},
)


def main() -> None:
    # ---- 2. the engine validates before anything runs ------------------
    broken = list(MY_FEATURES)
    broken[2] = dict(broken[2], list=["entropy:warp_core"])
    try:
        Pipeline.from_template(broken).validate()
    except TemplateError as error:
        print(f"validator caught the typo up front: {error}")
    engine = ExecutionEngine(track_memory=False)

    portwatch = AlgorithmSpec(
        algorithm_id="X01",
        name="portwatch (this example)",
        paper="you, just now",
        granularity=Granularity.CONNECTION,
        feature_template=MY_FEATURES,
        model_template=MY_MODEL,
    )

    # ---- 3. compare with the state of the art --------------------------
    from repro.algorithms.catalog import ALGORITHMS

    ALGORITHMS["X01"] = portwatch  # register so the runner can see it
    try:
        runner = BenchmarkRunner(engine=engine, seed=0)
        print("\nsame-dataset precision/recall on two datasets:")
        # A07 and A08 share their whole feature pipeline; X01 shares the
        # trace with everyone -- the engine computes each stage once.
        for algorithm_id in ("X01", "A14", "A10", "A07", "A08"):
            for dataset_id in ("F0", "F6"):
                result = runner.evaluate(algorithm_id, dataset_id, dataset_id)
                print(
                    f"  {algorithm_id:>4} on {dataset_id}: "
                    f"precision={result.precision:.3f} "
                    f"recall={result.recall:.3f} ({result.seconds:.2f}s)"
                )
        hits = engine.shared_cache.hits
        print(f"\nintermediate results shared across algorithms: "
              f"{hits} cache hits (e.g. A08 reused A07's Groupby + "
              f"first-N-packet features wholesale)")
    finally:
        ALGORITHMS.pop("X01", None)


if __name__ == "__main__":
    main()
