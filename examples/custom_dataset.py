#!/usr/bin/env python3
"""Adding your own dataset to the benchmarking suite (Section 6).

"If we were to extend our framework ... we would only need to add a new
dataset to our framework, and the rest of the functions/modules would
be used directly."  This example models a small medical-IoT ward --
a device mix and attack the built-in registry doesn't have -- registers
it as dataset "X0", and immediately gets the whole suite for free:
faithful evaluation, per-attack analysis, export to pcap.

Run with:  python examples/custom_dataset.py
"""

from repro.bench import BenchmarkRunner, per_attack_precision
from repro.datasets import DATASETS
from repro.datasets.registry import DatasetSpec, load_dataset, load_flows
from repro.flows import Granularity
from repro.traffic import AttackSpec, NetworkScenario

WARD_SCENARIO = NetworkScenario(
    name="X0",
    device_counts={
        "motion_sensor": 4,   # patient monitors, modelled as event sensors
        "smart_hub": 2,       # nurse-station gateways
        "printer": 1,         # the ward label printer
        "workstation": 2,     # staff terminals
    },
    duration=600.0,
    seed=400,
    benign_intensity=2.0,
    subnet="10.77.0.0/24",
    attacks=(
        # a compromised monitor quietly tunnelling records out
        AttackSpec("ssh_tunnel_cnc", 0.1, 0.9, intensity=1.0),
        AttackSpec("exfiltration", 0.5, 0.9, intensity=1.0),
        # and a ping flood on a gateway
        AttackSpec("icmp_flood", 0.3, 0.45, intensity=0.2),
    ),
    victim_model="motion_sensor",
)

WARD_SPEC = DatasetSpec(
    dataset_id="X0",
    title="Medical-IoT ward: stealth tunnel + exfiltration + ping flood",
    stands_in_for="your own capture",
    granularity=Granularity.CONNECTION,
    scenario=WARD_SCENARIO,
)


def main() -> None:
    DATASETS["X0"] = WARD_SPEC
    try:
        table = load_dataset("X0")
        flows = load_flows("X0", Granularity.CONNECTION)
        print(f"registered X0: {table.summary()}")
        print(f"connections  : {flows.summary()}")
        print()

        # the rest of the suite just works
        runner = BenchmarkRunner(seed=0)
        print("same-dataset evaluation of three catalog algorithms on X0:")
        for algorithm_id in ("A10", "A14", "A15"):
            result = runner.evaluate(algorithm_id, "X0", "X0")
            print(f"  {algorithm_id}: precision={result.precision:.3f} "
                  f"recall={result.recall:.3f}")
        print()
        print("per-attack view (who would you deploy on this ward?):")
        print(per_attack_precision(runner.store).render())
    finally:
        DATASETS.pop("X0", None)
        load_dataset.cache_clear()
        load_flows.cache_clear()


if __name__ == "__main__":
    main()
