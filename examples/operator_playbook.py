#!/usr/bin/env python3
"""The paper's Section 2.2 operator scenario, solved with Lumen.

"Consider an operator who wants to implement an anomaly detection
algorithm in their small business to detect brute force and DoS attacks
on IoT devices."  Instead of an inconclusive literature search, the
operator asks the benchmarking suite directly: which algorithms detect
*those attacks* best, on the datasets that contain them?

Run with:  python examples/operator_playbook.py
(takes a couple of minutes: it evaluates several algorithms)
"""

from repro.bench import BenchmarkRunner, per_attack_precision
from repro.datasets import attack_inventory

ATTACKS_OF_INTEREST = (
    "brute_force_ftp", "brute_force_ssh", "brute_force_telnet",
    "dos_syn_flood", "dos_http_flood", "dos_slowloris",
)

# a representative mix of cheap and expensive connection-level algorithms
CANDIDATE_ALGORITHMS = ["A10", "A13", "A14", "A15", "A07"]


def main() -> None:
    # Which datasets contain the operator's attacks?
    inventory = attack_inventory()
    relevant = sorted(
        {d for attack in ATTACKS_OF_INTEREST
         for d in inventory.get(attack, []) if d.startswith("F")}
    )
    print(f"attacks of interest : {', '.join(ATTACKS_OF_INTEREST)}")
    print(f"datasets containing them: {', '.join(relevant)}")
    print()

    # Evaluate every candidate on those datasets (same-dataset mode).
    runner = BenchmarkRunner(seed=0)
    runner.run_same_dataset(CANDIDATE_ALGORITHMS, relevant)

    # The Figure-5 style view, restricted to the operator's attacks.
    heatmap = per_attack_precision(runner.store)
    keep = [a for a in heatmap.col_labels if a in ATTACKS_OF_INTEREST]
    from repro.bench import Heatmap
    import numpy as np

    columns = [heatmap.col_labels.index(a) for a in keep]
    focused = Heatmap(heatmap.row_labels, keep,
                      heatmap.values[:, columns])
    print("per-attack precision (algorithm x attack):")
    print(focused.render())
    print()

    # The recommendation: best mean precision over the attacks of interest.
    means = focused.row_means()
    ranked = sorted(means.items(), key=lambda kv: -np.nan_to_num(kv[1]))
    print("recommendation (mean precision over your attacks):")
    for algorithm, mean in ranked:
        print(f"  {algorithm}: {mean:.3f}")
    best = ranked[0][0]
    print()
    print(f"=> deploy {best} for this threat model.")


if __name__ == "__main__":
    main()
