#!/usr/bin/env python3
"""Section 5.4: improving the state of the art with Lumen.

Reproduces both improvement heuristics on a small dataset subset:

1. merged-dataset training (concatenate 10% of every dataset);
2. greedy recombination of feature blocks and models (AM algorithms).

Run with:  python examples/synthesize_improved.py
(a few minutes: it evaluates dozens of candidate algorithms)
"""

import numpy as np

from repro.algorithms import build_algorithm
from repro.algorithms.synthesis import GreedySynthesizer, merged_train_test
from repro.core import ExecutionEngine
from repro.datasets import load_dataset
from repro.ml import precision_score

DATASETS = ["F0", "F1", "F4", "F6"]


def merged_vs_single(algorithm_id: str) -> tuple[float, float]:
    """Precision on a mixed test set: merged training vs single-dataset."""
    spec = build_algorithm(algorithm_id)
    engine = ExecutionEngine(track_memory=False)
    X_train, y_train, X_test, y_test = merged_train_test(
        spec, DATASETS, fraction=0.1, seed=0, engine=engine
    )
    merged = spec.build_model()
    merged.fit(X_train, y_train)
    merged_precision = precision_score(y_test, merged.predict(X_test))

    X_single, y_single = spec.featurize(load_dataset(DATASETS[0]), engine,
                                        DATASETS[0])
    single = spec.build_model()
    single.fit(X_single, y_single)
    single_precision = precision_score(y_test, single.predict(X_test))
    return float(single_precision), float(merged_precision)


def main() -> None:
    print("heuristic 1: merged-dataset training")
    print(f"  (train 10% of each of {DATASETS}, test on a mixed held-out set)")
    for algorithm_id in ("A08", "A09", "A13", "A14"):
        single, merged = merged_vs_single(algorithm_id)
        delta = merged - single
        print(
            f"  {algorithm_id}: single-dataset {single:.3f} -> "
            f"merged {merged:.3f}  ({delta:+.3f})"
        )

    print()
    print("heuristic 2: greedy feature-block x model search (AM synthesis)")
    synthesizer = GreedySynthesizer(DATASETS, fraction=0.1, seed=0)
    synthesizer.search(max_blocks=2)
    print(f"  evaluated {len(synthesizer.results)} candidates; top 3:")
    ranked = sorted(synthesizer.results, key=lambda r: r.f1, reverse=True)
    for result in ranked[:3]:
        print(f"    {result.describe()}")

    specs = synthesizer.top_specs(3)
    print(f"  registered as: {', '.join(s.algorithm_id for s in specs)}")

    # the paper's comparison point: mean precision of the originals
    originals = [
        max(r.precision for r in synthesizer.results
            if r.model_type == "NaiveBayes")  # the weakest family
    ]
    best = ranked[0]
    print()
    print(
        f"  best synthesised candidate reaches precision "
        f"{best.precision:.3f} on the merged benchmark"
    )


if __name__ == "__main__":
    main()
