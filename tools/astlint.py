#!/usr/bin/env python3
"""Repo-wide AST lint gate (stdlib only, no imports of the repo).

Rules:

* **AL001** -- unseeded randomness: calls to the legacy global numpy
  RNG (``np.random.rand`` etc.), ``np.random.default_rng()`` with no
  seed, or the stdlib ``random`` module's global functions.  Every
  experiment in this repo must be reproducible, so randomness flows
  from explicitly-seeded ``Generator`` objects.
* **AL002** -- mutable default argument: a list/dict/set literal (or
  bare ``list()``/``dict()``/``set()`` call) as a parameter default.
* **AL003** -- a ``@register_operation`` declaration whose declared
  ``output_type`` contradicts the decorated function's return
  annotation, or whose function does not take the operation calling
  convention's two arguments ``(inputs, params)``.
* **AL004** -- raw ``time.time()`` in library code (any file under a
  ``src`` directory): wall-clock time is not monotonic and duplicates
  the observability layer.  Use ``time.perf_counter()`` for durations
  or an obs span (:mod:`repro.obs`) for anything worth reporting.
* **AL005** -- a ``@register_operation`` function that mutates its
  ``inputs``/``params`` binding in place (item/attribute assignment,
  mutating method calls, ``np.fill_diagonal``/``out=`` aimed at an
  argument alias).  Operations must copy before mutating: the engine
  caches and parallelizes on the assumption that inputs survive a call
  unchanged.
* **AL006** -- module-level mutable state (lowercase-named list/dict/
  set literal bindings) in the engine-critical packages
  ``src/repro/core/`` and ``src/repro/analysis/``.  Name read-only
  tables ``UPPER_CASE``, or move the state into an object.
* **AL007** -- exception swallowing in library code (any file under a
  ``src`` directory): a bare ``except:`` handler, or an
  ``except Exception:``/``except BaseException:`` handler whose body
  is only ``pass``/``...``.  The fault-tolerance layer's contract is
  that failures are *recorded or re-raised*, never silently dropped;
  catch specific types, or do something with what you caught.
* **AL008** -- builtin ``hash()`` in library code (any file under a
  ``src`` directory): ``hash()`` is salted per process
  (``PYTHONHASHSEED``) and truncates to machine width, so any
  fingerprint, cache key or dedup decision built on it silently
  changes between runs.  Use ``hashlib`` (the engine and the
  equivalence analyzer both use sha-family digests).
* **AL009** -- a ``for ... in packets``-style Python row loop inside a
  ``@register_operation`` function whose analyzer verdict is
  elementwise/row-parallel and that declares no ``register_batch``
  implementation in the same module (rows are provably independent:
  declare a ``batch=`` numpy body so the engine can vectorize), or a
  Python row loop inside a ``@register_batch`` body itself (the batch
  path exists to *be* the vectorized one).
* **AL010** -- unbounded carried-state growth in streaming code: a
  ``@register_stream`` body or a class with a ``process_chunk`` method
  that grows a carried container (``append``/``setdefault``/non-constant
  ``dict[key] =`` on its state/``self`` attributes) with no eviction
  path anywhere (``pop``/``del``/``clear`` on the same state, or a
  method whose name mentions evict/expire/flush/timeout/prune).  Live
  detectors must bound their memory; see
  ``KitsuneStreamState.evict_idle`` and ``StreamingFlowDetector``.

* **AL011** -- lock-discipline violations: bare ``lock.acquire()`` /
  ``lock.release()`` calls on lock-like receivers anywhere (manual
  pairing leaks the lock on any exception path between the two calls
  -- use ``with lock:``), plus, in serving code (any file under a
  ``serve`` package), mutable module-level state that is written from
  a function body outside every lock.  The serve daemon fans one chunk
  out to N concurrent sessions, so its module globals are shared state
  by construction.

AL005/AL006 reuse the effect analyzer
(``src/repro/analysis/effects.py``), AL009 the vectorization analyzer
(``src/repro/analysis/vectorize.py``), AL010 the streaming-safety
analyzer (``src/repro/analysis/streamable.py``), and AL011 the
concurrency-safety analyzer (``src/repro/analysis/concurrency.py``)
-- all stdlib-only and loaded by file path, so this gate still
imports nothing from the repo (and no numpy).

Paths whose components include ``fixtures`` are skipped, as is any
line carrying an ``# astlint: disable`` comment.

Usage:  python tools/astlint.py SRC_DIR [MORE_DIRS_OR_FILES...]
Exit status 1 when any violation is found.
"""

from __future__ import annotations

import argparse
import ast
import importlib.util
import sys
from dataclasses import dataclass
from pathlib import Path


def _load_effects():
    """Load the effect analyzer by file path (no repo/package import)."""
    path = (
        Path(__file__).resolve().parent.parent
        / "src" / "repro" / "analysis" / "effects.py"
    )
    if not path.exists():
        return None
    spec = importlib.util.spec_from_file_location("_astlint_effects", path)
    if spec is None or spec.loader is None:
        return None
    module = importlib.util.module_from_spec(spec)
    # dataclass machinery resolves string annotations through
    # sys.modules[cls.__module__]; register before executing
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    except Exception:
        sys.modules.pop(spec.name, None)
        return None
    return module


_effects = _load_effects()


def _load_vectorize():
    """Load the vectorization analyzer by file path.

    Must run after :func:`_load_effects`: ``vectorize.py`` falls back
    to ``from _astlint_effects import ...`` when loaded standalone,
    which resolves through the module registered there.
    """
    if _effects is None:
        return None
    path = (
        Path(__file__).resolve().parent.parent
        / "src" / "repro" / "analysis" / "vectorize.py"
    )
    if not path.exists():
        return None
    spec = importlib.util.spec_from_file_location("_astlint_vectorize", path)
    if spec is None or spec.loader is None:
        return None
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    except Exception:
        sys.modules.pop(spec.name, None)
        return None
    return module


_vectorize = _load_vectorize()


def _load_streamable():
    """Load the streaming-safety analyzer by file path.

    Must run after :func:`_load_vectorize`: ``streamable.py`` falls
    back to ``from _astlint_vectorize import ...`` (and the effects
    helpers) when loaded standalone.
    """
    if _vectorize is None:
        return None
    path = (
        Path(__file__).resolve().parent.parent
        / "src" / "repro" / "analysis" / "streamable.py"
    )
    if not path.exists():
        return None
    spec = importlib.util.spec_from_file_location("_astlint_streamable", path)
    if spec is None or spec.loader is None:
        return None
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    except Exception:
        sys.modules.pop(spec.name, None)
        return None
    return module


_streamable = _load_streamable()


def _load_concurrency():
    """Load the concurrency-safety analyzer by file path.

    Must run after :func:`_load_streamable`: ``concurrency.py`` falls
    back to ``from _astlint_streamable import ...`` (and the effects /
    vectorize helpers) when loaded standalone.
    """
    if _streamable is None:
        return None
    path = (
        Path(__file__).resolve().parent.parent
        / "src" / "repro" / "analysis" / "concurrency.py"
    )
    if not path.exists():
        return None
    spec = importlib.util.spec_from_file_location("_astlint_concurrency", path)
    if spec is None or spec.loader is None:
        return None
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    except Exception:
        sys.modules.pop(spec.name, None)
        return None
    return module


_concurrency = _load_concurrency()

#: np.random attributes that use the unseeded process-global RNG
_LEGACY_NP_RANDOM = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "poisson", "exponential", "binomial", "beta",
    "gamma", "bytes",
}

#: stdlib random module functions drawing from its global instance
_STDLIB_RANDOM = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "expovariate",
    "betavariate", "gammavariate", "triangular", "getrandbits",
    "randbytes",
}

#: declared ValueType -> acceptable return-annotation spellings.
#: ``None`` means any annotation (or none) is fine.
_RETURN_ANNOTATIONS = {
    "PACKETS": {"PacketTable"},
    "FLOWS": {"FlowTable"},
    "FEATURES": {"np.ndarray", "numpy.ndarray", "ndarray"},
    "LABELS": {"np.ndarray", "numpy.ndarray", "ndarray"},
    "PREDICTIONS": {"np.ndarray", "numpy.ndarray", "ndarray"},
    "MODEL": {"object"},
    "METRICS": None,  # checked by prefix: dict[...]
    "ANY": None,
}


@dataclass(frozen=True)
class Violation:
    path: Path
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _dotted(node: ast.AST) -> str | None:
    """Render an attribute/name chain like ``np.random.rand``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _check_randomness(tree: ast.AST, path: Path, out: list[Violation]) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        parts = dotted.split(".")
        # np.random.rand(...) / numpy.random.shuffle(...)
        if (
            len(parts) == 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
            and parts[2] in _LEGACY_NP_RANDOM
        ):
            out.append(Violation(
                path, node.lineno, "AL001",
                f"call to unseeded global RNG: {dotted}() -- use a "
                f"seeded np.random.default_rng(seed)",
            ))
        # np.random.default_rng() with no seed argument
        elif (
            len(parts) == 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
            and parts[2] == "default_rng"
            and not node.args
            and not node.keywords
        ):
            out.append(Violation(
                path, node.lineno, "AL001",
                "np.random.default_rng() without a seed is "
                "entropy-seeded -- pass an explicit seed",
            ))
        # random.choice(...) etc. from the stdlib global instance
        elif (
            len(parts) == 2
            and parts[0] == "random"
            and parts[1] in _STDLIB_RANDOM
        ):
            out.append(Violation(
                path, node.lineno, "AL001",
                f"call to the stdlib global RNG: {dotted}() -- use "
                f"random.Random(seed) or a numpy Generator",
            ))


def _check_mutable_defaults(
    tree: ast.AST, path: Path, out: list[Violation]
) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set")
            ):
                mutable = True
            if mutable:
                out.append(Violation(
                    path, default.lineno, "AL002",
                    f"mutable default argument in {node.name}() -- "
                    f"default to None and create inside the function",
                ))


def _decorator_output_type(decorator: ast.Call) -> tuple[str | None, int]:
    """Extract the declared output ValueType name from the decorator."""
    node = None
    if len(decorator.args) >= 3:
        node = decorator.args[2]
    else:
        for keyword in decorator.keywords:
            if keyword.arg == "output_type":
                node = keyword.value
    dotted = _dotted(node) if node is not None else None
    if dotted and dotted.startswith("ValueType."):
        return dotted.split(".", 1)[1], getattr(node, "lineno", decorator.lineno)
    return None, decorator.lineno


def _check_register_operation(
    tree: ast.AST, path: Path, out: list[Violation]
) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            if _dotted(decorator.func) != "register_operation":
                continue
            args = node.args
            n_args = len(args.posonlyargs) + len(args.args)
            if n_args != 2 or args.vararg or args.kwonlyargs:
                out.append(Violation(
                    path, node.lineno, "AL003",
                    f"{node.name}() must take exactly (inputs, params) "
                    f"-- the operation calling convention",
                ))
            declared, line = _decorator_output_type(decorator)
            if declared is None:
                continue
            annotation = (
                ast.unparse(node.returns) if node.returns is not None else None
            )
            allowed = _RETURN_ANNOTATIONS.get(declared)
            ok = (
                annotation is None
                or declared == "ANY"
                or (declared == "METRICS" and annotation.startswith("dict"))
                or (allowed is not None and annotation in allowed)
            )
            if not ok:
                out.append(Violation(
                    path, line, "AL003",
                    f"{node.name}() declares output_type "
                    f"ValueType.{declared} but is annotated "
                    f"'-> {annotation}'",
                ))


def _check_wall_clock(tree: ast.AST, path: Path, out: list[Violation]) -> None:
    if "src" not in path.parts:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _dotted(node.func) == "time.time":
            out.append(Violation(
                path, node.lineno, "AL004",
                "raw time.time() in library code -- use "
                "time.perf_counter() for durations or an obs span "
                "(repro.obs) for reported timings",
            ))


def _check_operation_effects(
    tree: ast.AST, path: Path, out: list[Violation]
) -> None:
    """AL005: a registered operation mutates an argument binding."""
    if _effects is None:
        return
    module_ctx = _effects.collect_module_context(tree)
    mutation_kinds = (
        _effects.EffectKind.MUTATES_INPUT,
        _effects.EffectKind.MUTATES_PARAMS,
    )
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        registered = any(
            isinstance(decorator, ast.Call)
            and _dotted(decorator.func) == "register_operation"
            for decorator in node.decorator_list
        )
        if not registered:
            continue
        effects = _effects.analyze_function(node, module=module_ctx)
        for finding in effects.findings:
            if finding.kind not in mutation_kinds:
                continue
            binding = (
                "inputs"
                if finding.kind is _effects.EffectKind.MUTATES_INPUT
                else "params"
            )
            out.append(Violation(
                path, finding.line, "AL005",
                f"{node.name}() mutates its {binding} binding in place "
                f"({finding.detail}) -- operations must copy before "
                f"mutating",
            ))


def _check_module_state(
    tree: ast.AST, path: Path, out: list[Violation]
) -> None:
    """AL006: lowercase module-level mutable state in engine packages."""
    if _effects is None:
        return
    parts = path.parts
    critical = any(
        parts[i:i + 2] in (("repro", "core"), ("repro", "analysis"))
        for i in range(len(parts) - 1)
    )
    if not critical:
        return
    module_ctx = _effects.collect_module_context(tree)
    for name, line in sorted(
        module_ctx.mutable_globals.items(), key=lambda item: item[1]
    ):
        if _effects.is_constant_style(name):
            continue
        out.append(Violation(
            path, line, "AL006",
            f"module-level mutable state {name!r} in an engine-critical "
            f"package -- name it UPPER_CASE if it is a read-only table, "
            f"or move it into an object",
        ))


def _check_exception_swallowing(
    tree: ast.AST, path: Path, out: list[Violation]
) -> None:
    """AL007: bare ``except:`` / pass-only ``except Exception:``."""
    if "src" not in path.parts:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            out.append(Violation(
                path, node.lineno, "AL007",
                "bare 'except:' catches everything (including "
                "KeyboardInterrupt) -- catch specific exception types",
            ))
            continue
        caught = node.type.elts if isinstance(node.type, ast.Tuple) else [
            node.type
        ]
        names = {_dotted(item) for item in caught}
        if not names & {"Exception", "BaseException"}:
            continue
        body_swallows = all(
            isinstance(statement, ast.Pass)
            or (
                isinstance(statement, ast.Expr)
                and isinstance(statement.value, ast.Constant)
                and statement.value.value is Ellipsis
            )
            for statement in node.body
        )
        if body_swallows:
            out.append(Violation(
                path, node.lineno, "AL007",
                "'except Exception: pass' silently swallows failures "
                "-- record the failure or re-raise",
            ))


def _check_builtin_hash(
    tree: ast.AST, path: Path, out: list[Violation]
) -> None:
    """AL008: builtin ``hash()`` has no place in library fingerprints."""
    if "src" not in path.parts:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            out.append(Violation(
                path, node.lineno, "AL008",
                "builtin hash() is per-process salted "
                "(PYTHONHASHSEED) -- derive fingerprints and cache "
                "keys from hashlib digests",
            ))


def _decorator_call(node: ast.FunctionDef, name: str) -> ast.Call | None:
    for decorator in node.decorator_list:
        if (
            isinstance(decorator, ast.Call)
            and _dotted(decorator.func) == name
        ):
            return decorator
    return None


def _value_kinds(node: ast.AST | None) -> list[str] | None:
    """Lowercased ValueType kind strings from a decorator argument."""
    if node is None:
        return None
    items = node.elts if isinstance(node, (ast.Tuple, ast.List)) else [node]
    kinds: list[str] = []
    for item in items:
        dotted = _dotted(item)
        if not dotted or not dotted.startswith("ValueType."):
            return None
        kinds.append(dotted.split(".", 1)[1].lower())
    return kinds


def _check_row_loops(tree: ast.AST, path: Path, out: list[Violation]) -> None:
    """AL009: Python row loops where the analyzer proves independence."""
    if _vectorize is None:
        return
    batch_ops: dict[str, ast.FunctionDef] = {}
    scalar_ops: list[tuple[ast.FunctionDef, str, list[str], str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        batch = _decorator_call(node, "register_batch")
        if (
            batch is not None
            and batch.args
            and isinstance(batch.args[0], ast.Constant)
            and isinstance(batch.args[0].value, str)
        ):
            batch_ops[batch.args[0].value] = node
        reg = _decorator_call(node, "register_operation")
        if reg is None:
            continue
        name = (
            reg.args[0].value
            if reg.args and isinstance(reg.args[0], ast.Constant)
            else node.name
        )
        if len(reg.args) >= 2:
            inputs_node: ast.AST | None = reg.args[1]
        else:
            inputs_node = next(
                (
                    kw.value
                    for kw in reg.keywords
                    if kw.arg == "input_types"
                ),
                None,
            )
        input_kinds = _value_kinds(inputs_node)
        declared, _ = _decorator_output_type(reg)
        if input_kinds is None or declared is None:
            continue
        scalar_ops.append((node, str(name), input_kinds, declared.lower()))

    for node, name, input_kinds, output_kind in scalar_ops:
        findings = _vectorize.analyze_rows(node)
        verdict = _vectorize.classify(findings, input_kinds, output_kind)
        if verdict not in _vectorize.BATCHABLE_VERDICTS:
            continue
        if name in batch_ops:
            continue
        for finding in findings:
            if finding.kind is _vectorize.RowKind.ROW_LOOP:
                out.append(Violation(
                    path, finding.line, "AL009",
                    f"{node.name}() iterates rows in Python "
                    f"({finding.detail}) but the analyzer classifies "
                    f"{name!r} as {verdict} -- declare a batch= numpy "
                    f"implementation (register_batch)",
                ))
                break

    for name, node in sorted(batch_ops.items()):
        findings = _vectorize.analyze_rows(node)
        for finding in findings:
            if finding.kind is _vectorize.RowKind.ROW_LOOP:
                out.append(Violation(
                    path, finding.line, "AL009",
                    f"{node.name}() is the batch implementation of "
                    f"{name!r} but still iterates rows in Python "
                    f"({finding.detail}) -- the batch path must stay "
                    f"columnar",
                ))
                break


def _check_stream_growth(
    tree: ast.AST, path: Path, out: list[Violation]
) -> None:
    """AL010: carried-state growth with no eviction in streaming code."""
    if _streamable is None:
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            if _decorator_call(node, "register_stream") is None:
                continue
            positional = [*node.args.posonlyargs, *node.args.args]
            seeds = {positional[2].arg} if len(positional) > 2 else {"state"}
            audit = _streamable.stream_state_audit(node, seeds)
            if audit["growth"] and not audit["eviction"]:
                line, detail = audit["growth"][0]
                out.append(Violation(
                    path, line, "AL010",
                    f"{node.name}() grows carried stream state "
                    f"({detail}) with no eviction/timeout path -- bound "
                    f"the state or add eviction",
                ))
        elif isinstance(node, ast.ClassDef):
            methods = {
                item.name
                for item in node.body
                if isinstance(item, ast.FunctionDef)
            }
            if "process_chunk" not in methods:
                continue
            audit = _streamable.stream_state_audit(node, {"self"})
            if audit["growth"] and not audit["eviction"]:
                line, detail = audit["growth"][0]
                out.append(Violation(
                    path, line, "AL010",
                    f"{node.name}.process_chunk carries state that "
                    f"grows ({detail}) with no eviction/timeout path "
                    f"-- live detectors must bound their memory",
                ))


def _check_lock_discipline(
    tree: ast.AST, path: Path, out: list[Violation]
) -> None:
    """AL011: bare acquire/release; unguarded globals in serving code."""
    if _concurrency is None:
        return
    known = frozenset(_concurrency.module_locks(tree))
    for line, receiver, method in _concurrency.bare_lock_ops(tree, known):
        out.append(Violation(
            path, line, "AL011",
            f"bare {receiver}.{method}() -- manual lock pairing leaks "
            f"the lock on any exception path; use 'with {receiver}:'",
        ))
    if "serve" not in path.parts:
        return
    for line, name, detail in _concurrency.unguarded_module_state(tree):
        out.append(Violation(
            path, line, "AL011",
            f"module global '{name}' in serving code is {detail} -- "
            f"concurrent sessions share module state; guard it with a "
            f"lock or confine it to the session",
        ))


def lint_file(path: Path) -> list[Violation]:
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, "AL000",
                          f"syntax error: {exc.msg}")]
    violations: list[Violation] = []
    _check_randomness(tree, path, violations)
    _check_mutable_defaults(tree, path, violations)
    _check_register_operation(tree, path, violations)
    _check_wall_clock(tree, path, violations)
    _check_operation_effects(tree, path, violations)
    _check_module_state(tree, path, violations)
    _check_exception_swallowing(tree, path, violations)
    _check_builtin_hash(tree, path, violations)
    _check_row_loops(tree, path, violations)
    _check_stream_growth(tree, path, violations)
    _check_lock_discipline(tree, path, violations)
    disabled = {
        number
        for number, text in enumerate(source.splitlines(), start=1)
        if "# astlint: disable" in text
    }
    return [v for v in violations if v.line not in disabled]


def iter_python_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return [f for f in files if "fixtures" not in f.parts]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+",
                        help="files or directories to lint")
    args = parser.parse_args(argv)
    violations: list[Violation] = []
    files = iter_python_files(args.paths)
    for path in files:
        violations.extend(lint_file(path))
    for violation in violations:
        print(violation)
    print(f"{len(files)} file(s): {len(violations)} violation(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
