#!/usr/bin/env python3
"""Validate a JSONL trace file against the repro.obs event schema.

Stdlib-only (CI runs it without installing the package).  Checks that
every line is a JSON object of kind ``span`` or ``event`` with the
fields the sinks write (see ``docs/OBSERVABILITY.md``), that ids are
consistent (a span's parent, when present in the file, shares its
trace id), and that the file contains at least one span.

Usage:  python tools/check_trace.py TRACE.jsonl [MORE...]
Exit status 1 when any file is empty, malformed, or schema-invalid.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

_NUMBER = (int, float)

_SPAN_FIELDS = {
    "name": str,
    "span_id": int,
    "trace_id": int,
    "ts": _NUMBER,
    "duration_seconds": _NUMBER,
    "status": str,
    "attrs": dict,
}

_EVENT_FIELDS = {
    "name": str,
    "ts": _NUMBER,
    "attrs": dict,
}


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    spans: dict[int, dict] = {}
    lines = 0
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [f"{path}: unreadable: {exc}"]
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        lines += 1
        where = f"{path}:{number}"
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"{where}: not valid JSON: {exc.msg}")
            continue
        if not isinstance(event, dict):
            problems.append(f"{where}: event is not an object")
            continue
        kind = event.get("kind")
        if kind == "span":
            required = _SPAN_FIELDS
        elif kind == "event":
            required = _EVENT_FIELDS
        else:
            problems.append(f"{where}: unknown kind {kind!r}")
            continue
        for name, types in required.items():
            if name not in event:
                problems.append(f"{where}: {kind} missing field {name!r}")
            elif not isinstance(event[name], types):
                problems.append(
                    f"{where}: field {name!r} has type "
                    f"{type(event[name]).__name__}"
                )
        if kind != "span" or any(f not in event for f in _SPAN_FIELDS):
            continue
        if event["duration_seconds"] < 0:
            problems.append(f"{where}: negative duration")
        parent = event.get("parent_id")
        if parent is not None and not isinstance(parent, int):
            problems.append(f"{where}: parent_id is not an int or null")
        elif parent in spans and spans[parent]["trace_id"] != event["trace_id"]:
            problems.append(
                f"{where}: span {event['span_id']} disagrees with its "
                f"parent about the trace id"
            )
        spans[event["span_id"]] = event
    if lines == 0:
        problems.append(f"{path}: trace is empty")
    elif not spans:
        problems.append(f"{path}: no span events")
    return problems


def main(argv: list[str] | None = None) -> int:
    paths = argv if argv is not None else sys.argv[1:]
    if not paths:
        print("usage: check_trace.py TRACE.jsonl [MORE...]", file=sys.stderr)
        return 2
    problems: list[str] = []
    total_spans = 0
    for raw in paths:
        path = Path(raw)
        found = check_file(path)
        problems.extend(found)
        if not found:
            events = [json.loads(line)
                      for line in path.read_text().splitlines()
                      if line.strip()]
            total_spans += sum(e.get("kind") == "span" for e in events)
    for problem in problems:
        print(problem)
    print(f"{len(paths)} file(s): {total_spans} span(s), "
          f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
