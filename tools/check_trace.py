#!/usr/bin/env python3
"""Validate a JSONL trace file against the repro.obs event schema.

Stdlib-only (CI runs it without installing the package).  Checks that
every line is a JSON object of kind ``span`` or ``event`` with the
fields the sinks write (see ``docs/OBSERVABILITY.md``), that ids are
consistent (a span's parent, when present in the file, shares its
trace id), that the file contains at least one span, and that every
``step:*`` span carries the resource attributes the engine's
:class:`ResourceProbe` attaches (cpu_seconds, rss_peak_bytes,
gc_collections; alloc_bytes/alloc_peak_bytes when memory tracking was
on).  ``run_stream`` spans must carry either a non-empty
``stream_refused`` reason or a ``chunks`` count, and every
``stream_chunk`` span must carry its chunk index and the carried-state
byte measurement.  The serve daemon's spans are validated too: a
``serve`` root span needs its config attrs (chunk_seconds, pps,
policy, queue_capacity), non-negative outcome counters
(chunks_scored/quarantined/dropped, reloads, watchdog_restarts) and a
non-empty ``outcome``; ``ingest`` spans need the replay ``row`` they
started at (plus ``rows`` moved when they succeeded); ``score_chunk``
spans need chunk/rows/row_start and a 1-based ``attempt``.

With ``--progress`` the file is instead validated as a matrix
progress-event journal (``repro matrix --progress-file``): every line
must be a ``kind: progress`` object with the documented counters,
``done`` must advance monotonically without exceeding ``total``, and
the failure count must never decrease.

Usage:  python tools/check_trace.py TRACE.jsonl [MORE...]
        python tools/check_trace.py --progress PROGRESS.jsonl [MORE...]
Exit status 1 when any file is empty, malformed, or schema-invalid.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

_NUMBER = (int, float)

_SPAN_FIELDS = {
    "name": str,
    "span_id": int,
    "trace_id": int,
    "ts": _NUMBER,
    "duration_seconds": _NUMBER,
    "status": str,
    "attrs": dict,
}

_EVENT_FIELDS = {
    "name": str,
    "ts": _NUMBER,
    "attrs": dict,
}

#: resource attrs the engine's ResourceProbe puts on every step span
_RESOURCE_ATTRS = {
    "cpu_seconds": _NUMBER,
    "rss_peak_bytes": int,
    "gc_collections": int,
}

#: attached only when allocation tracking (tracemalloc) was on
_ALLOC_ATTRS = {
    "alloc_bytes": int,
    "alloc_peak_bytes": int,
}

_PROGRESS_FIELDS = {
    "ts": _NUMBER,
    "total": int,
    "done": int,
    "ok": int,
    "failed": int,
    "resumed": int,
    "retried": int,
    "faults_injected": int,
    "elapsed_seconds": _NUMBER,
    "plan_stages_shared": int,
    "cell": str,
    "outcome": str,
}

_PROGRESS_OUTCOMES = ("ok", "failed", "resumed")


def _check_resources(where: str, span: dict, problems: list[str]) -> None:
    """Resource attrs every ``step:*`` span must carry."""
    attrs = span.get("attrs")
    if not isinstance(attrs, dict):
        return
    for name, types in _RESOURCE_ATTRS.items():
        value = attrs.get(name)
        if value is None:
            problems.append(f"{where}: step span missing resource "
                            f"attr {name!r}")
        elif not isinstance(value, types) or isinstance(value, bool):
            problems.append(f"{where}: resource attr {name!r} has type "
                            f"{type(value).__name__}")
        elif value < 0:
            problems.append(f"{where}: resource attr {name!r} is negative")
    for name, types in _ALLOC_ATTRS.items():
        value = attrs.get(name)
        if value is not None and (
            not isinstance(value, types) or isinstance(value, bool)
        ):
            problems.append(f"{where}: alloc attr {name!r} has type "
                            f"{type(value).__name__}")


#: attrs every stream_chunk span must carry (chunked engine mode)
_STREAM_CHUNK_ATTRS = {
    "chunk": int,
    "rows": int,
    "state_bytes": int,
}


def _check_stream_chunk(where: str, span: dict, problems: list[str]) -> None:
    attrs = span.get("attrs")
    if not isinstance(attrs, dict):
        return
    for name, types in _STREAM_CHUNK_ATTRS.items():
        value = attrs.get(name)
        if value is None:
            problems.append(f"{where}: stream_chunk span missing attr "
                            f"{name!r}")
        elif not isinstance(value, types) or isinstance(value, bool):
            problems.append(f"{where}: stream attr {name!r} has type "
                            f"{type(value).__name__}")
        elif value < 0:
            problems.append(f"{where}: stream attr {name!r} is negative")


def _check_run_stream(where: str, span: dict, problems: list[str]) -> None:
    """A run_stream span either refused visibly or counted its chunks."""
    attrs = span.get("attrs")
    if not isinstance(attrs, dict):
        return
    refused = attrs.get("stream_refused")
    if refused is not None:
        if not isinstance(refused, str) or not refused:
            problems.append(f"{where}: stream_refused must be a "
                            "non-empty string")
        return
    chunks = attrs.get("chunks")
    if span.get("status") != "ok":
        return  # an errored run may have died before counting
    if not isinstance(chunks, int) or isinstance(chunks, bool):
        problems.append(f"{where}: run_stream span carries neither "
                        "stream_refused nor an int 'chunks' count")
    elif chunks < 0:
        problems.append(f"{where}: run_stream chunk count is negative")


#: attrs every serve (daemon root) span must carry
_SERVE_ATTRS = {
    "chunk_seconds": _NUMBER,
    "pps": _NUMBER,
    "policy": str,
    "queue_capacity": int,
}

#: counters a completed serve span reports
_SERVE_COUNTERS = (
    "chunks_scored",
    "chunks_quarantined",
    "chunks_dropped",
    "reloads",
    "watchdog_restarts",
)


def _check_serve(where: str, span: dict, problems: list[str]) -> None:
    """The daemon's root span: config attrs plus outcome counters."""
    attrs = span.get("attrs")
    if not isinstance(attrs, dict):
        return
    for name, types in _SERVE_ATTRS.items():
        value = attrs.get(name)
        if value is None:
            problems.append(f"{where}: serve span missing attr {name!r}")
        elif not isinstance(value, types) or isinstance(value, bool):
            problems.append(f"{where}: serve attr {name!r} has type "
                            f"{type(value).__name__}")
    for name in _SERVE_COUNTERS:
        value = attrs.get(name)
        if value is None:
            problems.append(f"{where}: serve span missing counter {name!r}")
        elif not isinstance(value, int) or isinstance(value, bool):
            problems.append(f"{where}: serve counter {name!r} has type "
                            f"{type(value).__name__}")
        elif value < 0:
            problems.append(f"{where}: serve counter {name!r} is negative")
    outcome = attrs.get("outcome")
    if not isinstance(outcome, str) or not outcome:
        problems.append(f"{where}: serve span needs a non-empty "
                        "'outcome' string")


def _check_ingest(where: str, span: dict, problems: list[str]) -> None:
    """One replay delivery: where it started, how many rows it moved."""
    attrs = span.get("attrs")
    if not isinstance(attrs, dict):
        return
    row = attrs.get("row")
    if not isinstance(row, int) or isinstance(row, bool) or row < 0:
        problems.append(f"{where}: ingest span needs a non-negative "
                        "int 'row'")
    rows = attrs.get("rows")
    if span.get("status") != "ok":
        return  # a failed delivery died before counting rows
    if not isinstance(rows, int) or isinstance(rows, bool) or rows < 0:
        problems.append(f"{where}: ingest span needs a non-negative "
                        "int 'rows'")


#: attrs every score_chunk attempt span must carry
_SCORE_CHUNK_ATTRS = {
    "chunk": int,
    "rows": int,
    "row_start": int,
    "attempt": int,
    "session": int,
}


def _check_score_chunk(where: str, span: dict, problems: list[str]) -> None:
    attrs = span.get("attrs")
    if not isinstance(attrs, dict):
        return
    for name, types in _SCORE_CHUNK_ATTRS.items():
        value = attrs.get(name)
        if value is None:
            problems.append(f"{where}: score_chunk span missing attr "
                            f"{name!r}")
        elif not isinstance(value, types) or isinstance(value, bool):
            problems.append(f"{where}: score_chunk attr {name!r} has "
                            f"type {type(value).__name__}")
        elif value < 0:
            problems.append(f"{where}: score_chunk attr {name!r} is "
                            "negative")
    if isinstance(attrs.get("attempt"), int) and attrs["attempt"] < 1:
        problems.append(f"{where}: score_chunk attempt starts at 1")


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    spans: dict[int, dict] = {}
    lines = 0
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [f"{path}: unreadable: {exc}"]
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        lines += 1
        where = f"{path}:{number}"
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"{where}: not valid JSON: {exc.msg}")
            continue
        if not isinstance(event, dict):
            problems.append(f"{where}: event is not an object")
            continue
        kind = event.get("kind")
        if kind == "span":
            required = _SPAN_FIELDS
        elif kind == "event":
            required = _EVENT_FIELDS
        else:
            problems.append(f"{where}: unknown kind {kind!r}")
            continue
        for name, types in required.items():
            if name not in event:
                problems.append(f"{where}: {kind} missing field {name!r}")
            elif not isinstance(event[name], types):
                problems.append(
                    f"{where}: field {name!r} has type "
                    f"{type(event[name]).__name__}"
                )
        if kind != "span" or any(f not in event for f in _SPAN_FIELDS):
            continue
        if event["duration_seconds"] < 0:
            problems.append(f"{where}: negative duration")
        parent = event.get("parent_id")
        if parent is not None and not isinstance(parent, int):
            problems.append(f"{where}: parent_id is not an int or null")
        elif parent in spans and spans[parent]["trace_id"] != event["trace_id"]:
            problems.append(
                f"{where}: span {event['span_id']} disagrees with its "
                f"parent about the trace id"
            )
        if event["name"].startswith("step:"):
            _check_resources(where, event, problems)
        elif event["name"] == "stream_chunk":
            _check_stream_chunk(where, event, problems)
        elif event["name"] == "run_stream":
            _check_run_stream(where, event, problems)
        elif event["name"] == "serve":
            _check_serve(where, event, problems)
        elif event["name"] == "ingest":
            _check_ingest(where, event, problems)
        elif event["name"] == "score_chunk":
            _check_score_chunk(where, event, problems)
        spans[event["span_id"]] = event
    if lines == 0:
        problems.append(f"{path}: trace is empty")
    elif not spans:
        problems.append(f"{path}: no span events")
    return problems


def check_progress_file(path: Path) -> list[str]:
    """Validate a matrix progress-event journal."""
    problems: list[str] = []
    lines = 0
    last_done = 0
    last_failed = 0
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [f"{path}: unreadable: {exc}"]
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        lines += 1
        where = f"{path}:{number}"
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"{where}: not valid JSON: {exc.msg}")
            continue
        if not isinstance(event, dict):
            problems.append(f"{where}: event is not an object")
            continue
        if event.get("kind") != "progress":
            problems.append(
                f"{where}: kind is {event.get('kind')!r}, not 'progress'"
            )
            continue
        bad = False
        for name, types in _PROGRESS_FIELDS.items():
            value = event.get(name)
            if value is None:
                problems.append(f"{where}: missing field {name!r}")
                bad = True
            elif not isinstance(value, types) or isinstance(value, bool):
                problems.append(f"{where}: field {name!r} has type "
                                f"{type(value).__name__}")
                bad = True
        if bad:
            continue
        if event["outcome"] not in _PROGRESS_OUTCOMES:
            problems.append(f"{where}: unknown outcome "
                            f"{event['outcome']!r}")
        if event["done"] != event["ok"] + event["failed"] + event["resumed"]:
            problems.append(f"{where}: done != ok + failed + resumed")
        if event["done"] <= last_done:
            problems.append(f"{where}: done did not advance "
                            f"({last_done} -> {event['done']})")
        if event["done"] > event["total"]:
            problems.append(f"{where}: done exceeds total")
        if event["failed"] < last_failed:
            problems.append(f"{where}: failure count decreased "
                            f"({last_failed} -> {event['failed']})")
        last_done = max(last_done, event["done"])
        last_failed = max(last_failed, event["failed"])
    if lines == 0:
        problems.append(f"{path}: progress journal is empty")
    return problems


def main(argv: list[str] | None = None) -> int:
    args = list(argv) if argv is not None else sys.argv[1:]
    progress_mode = "--progress" in args
    paths = [a for a in args if a != "--progress"]
    if not paths:
        print("usage: check_trace.py [--progress] FILE.jsonl [MORE...]",
              file=sys.stderr)
        return 2
    problems: list[str] = []
    total = 0
    for raw in paths:
        path = Path(raw)
        if progress_mode:
            found = check_progress_file(path)
        else:
            found = check_file(path)
        problems.extend(found)
        if not found:
            events = [json.loads(line)
                      for line in path.read_text().splitlines()
                      if line.strip()]
            if progress_mode:
                total += len(events)
            else:
                total += sum(e.get("kind") == "span" for e in events)
    for problem in problems:
        print(problem)
    unit = "progress event(s)" if progress_mode else "span(s)"
    print(f"{len(paths)} file(s): {total} {unit}, "
          f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
