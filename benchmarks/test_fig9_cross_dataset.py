"""Figure 9: per-algorithm scores when trained and tested on different
datasets.

Observation 2 (second half): "the precision and recall of 16 of the 16
algorithms drops below 20% for at least one data set" in the
cross-dataset setting -- the collapse that motivates the whole paper.
"""

import numpy as np

from bench_common import save_artifact

from repro.bench import distribution_by_algorithm
from repro.bench.analysis import algorithms_below


def test_fig9a_precision(full_store, benchmark):
    box = benchmark(distribution_by_algorithm, full_store,
                    metric="precision", mode="cross")
    save_artifact("fig9a_cross_precision.txt", box.render())
    assert len(box.groups) >= 15  # A05-equivalent caveat: every
    # algorithm with >= 2 faithful datasets appears


def test_fig9b_recall(full_store):
    box = distribution_by_algorithm(full_store, metric="recall", mode="cross")
    save_artifact("fig9b_cross_recall.txt", box.render())


def test_observation2_universal_cross_dataset_collapse(full_store):
    cross = full_store.query(mode="cross")
    evaluated = set(cross.algorithms())
    dropped_precision = set(
        algorithms_below(full_store, metric="precision", threshold=0.2,
                         mode="cross")
    )
    # the paper: all 16 of 16; we require the overwhelming majority
    assert len(dropped_precision) >= len(evaluated) - 2


def test_cross_dataset_much_worse_than_same(full_store):
    same = distribution_by_algorithm(full_store, mode="same")
    cross = distribution_by_algorithm(full_store, mode="cross")
    worse = 0
    for algorithm in cross.groups:
        if algorithm not in same.groups:
            continue
        if min(cross.groups[algorithm]) < np.median(same.groups[algorithm]) - 0.5:
            worse += 1
    # "for all algorithms, the precision and recall score drops by more
    # than 80% when trained on one and tested on other datasets" --
    # we require a >50% drop for most algorithms
    assert worse >= len(cross.groups) * 0.6
