"""Ablation: greedy synthesis vs budgeted random search (Section 6).

The paper proposes replacing the greedy brute-force AM search with
black-box optimisation; random search under the same evaluation budget
is the canonical baseline.  At benchmark scale both find strong
candidates -- the interesting output is the quality-vs-budget record.
"""

from bench_common import save_artifact

from repro.algorithms.synthesis import (
    GreedySynthesizer,
    RandomSearchSynthesizer,
)

DATASETS = ["F0", "F4"]
BUDGET = 12


def run_comparison() -> dict:
    greedy = GreedySynthesizer(DATASETS, fraction=0.12, seed=0)
    greedy.search(max_blocks=2)
    greedy_results = sorted(greedy.results, key=lambda r: r.f1, reverse=True)

    random_search = RandomSearchSynthesizer(DATASETS, fraction=0.12, seed=0)
    random_results = random_search.search(max_blocks=2, budget=BUDGET)
    return {
        "greedy_best": greedy_results[0],
        "greedy_evaluations": len(greedy_results),
        "random_best": random_results[0],
        "random_evaluations": len(random_results),
    }


def test_search_ablation(benchmark):
    data = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    text = (
        f"greedy: best f1={data['greedy_best'].f1:.3f} "
        f"({data['greedy_evaluations']} evaluations)\n"
        f"  {data['greedy_best'].describe()}\n"
        f"random (budget {BUDGET}): best f1={data['random_best'].f1:.3f} "
        f"({data['random_evaluations']} evaluations)\n"
        f"  {data['random_best'].describe()}\n"
    )
    save_artifact("ablation_search.txt", text)
    assert data["greedy_best"].f1 > 0.85
    assert data["random_best"].f1 > 0.7


def test_random_search_respects_budget():
    random_search = RandomSearchSynthesizer(DATASETS, fraction=0.12, seed=1)
    results = random_search.search(max_blocks=2, budget=6)
    assert len(results) <= 6


def test_random_search_deterministic_in_seed():
    a = RandomSearchSynthesizer(DATASETS, fraction=0.12, seed=2)
    b = RandomSearchSynthesizer(DATASETS, fraction=0.12, seed=2)
    ra = a.search(max_blocks=2, budget=5)
    rb = b.search(max_blocks=2, budget=5)
    assert [r.blocks for r in ra] == [r.blocks for r in rb]
    assert [r.f1 for r in ra] == [r.f1 for r in rb]
