"""Figures 1b/1c: the motivating precision-spread comparison.

1b: even trained and tested on the same dataset, each algorithm's
precision varies widely across datasets.  1c: the variance further
degrades when training and testing datasets differ.
"""

import numpy as np

from bench_common import save_artifact

from repro.bench import distribution_by_algorithm


def test_fig1b_same_dataset_spread(full_store, benchmark):
    box = benchmark(distribution_by_algorithm, full_store,
                    metric="precision", mode="same")
    save_artifact("fig1b_same_dataset.txt", box.render())
    summary = box.summary()
    # wide spread: some algorithm spans more than half the [0,1] range
    spans = [s["max"] - s["min"] for s in summary.values()]
    assert max(spans) > 0.5


def test_fig1c_cross_dataset_degrades(full_store):
    same = distribution_by_algorithm(full_store, mode="same")
    cross = distribution_by_algorithm(full_store, mode="cross")
    save_artifact("fig1c_cross_dataset.txt", cross.render())
    same_medians = [np.median(v) for v in same.groups.values()]
    cross_medians = [np.median(v) for v in cross.groups.values()]
    # cross-dataset evaluation is worse in aggregate
    assert np.mean(cross_medians) < np.mean(same_medians)
    # and the spread (the paper's point) gets wider or stays as wide
    cross_spans = [max(v) - min(v) for v in cross.groups.values()]
    assert max(cross_spans) > 0.8
