"""Table 1: the literature survey of ML-based IoT anomaly detection.

Regenerates the paper's comparative table from the transcribed
metadata and checks its structural claims (heterogeneous granularities,
dataset reuse is rare).
"""

from bench_common import save_artifact

from repro.datasets import literature_table
from repro.datasets.literature import LITERATURE


def render_table1() -> str:
    rows = literature_table()
    columns = list(rows[0])
    widths = {
        c: max(len(c), *(len(r[c]) for r in rows)) for c in columns
    }
    lines = [" | ".join(c.ljust(widths[c]) for c in columns)]
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(" | ".join(row[c].ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def test_table1_regenerates(benchmark):
    text = benchmark(render_table1)
    save_artifact("table1_literature.txt", text)
    assert "Kitsune" in text
    assert "Random Forest" in text


def test_table1_matches_paper_structure():
    assert len(LITERATURE) == 11
    granularities = {entry.granularity for entry in LITERATURE}
    assert "Packet" in granularities
    assert "Connection" in granularities
    assert "Unidirectional Flow" in granularities
    # most datasets in the survey are private/custom
    custom = sum(
        1 for e in LITERATURE if any(d.startswith("custom") for d in e.datasets)
    )
    assert custom >= 5
