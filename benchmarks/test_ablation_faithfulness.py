"""Ablation: the ground-truth damage of ignoring the faithfulness rule.

Section 2.1: a connection-level algorithm "cannot be trained with a
packet-granularity dataset because there will be connections that
contain packets with both labels; thus, one would need to change the
ground-truth data."  This ablation performs the forbidden any-malicious
rewrite on the packet datasets and measures how many connections are
mixed and how far the positive rate drifts -- the quantitative reason
the benchmarking suite refuses such evaluations.
"""

from bench_common import save_artifact

from repro.bench.ablation import measure_rewrite_damage, render_ablation

PACKET_DATASETS = ["P0", "P1"]


def test_ablation_regenerates(benchmark):
    rows = benchmark(
        lambda: [measure_rewrite_damage(d) for d in PACKET_DATASETS]
    )
    save_artifact("ablation_faithfulness.txt", render_ablation(rows))
    assert len(rows) == len(PACKET_DATASETS)


def test_mixed_connections_exist():
    # the rule matters only if mixed-label connections actually occur
    rows = [measure_rewrite_damage(d) for d in PACKET_DATASETS]
    assert any(row.n_mixed_connections > 0 for row in rows)


def test_rewrite_distorts_positive_rate():
    rows = [measure_rewrite_damage(d) for d in PACKET_DATASETS]
    # the any-malicious rewrite never deflates and measurably inflates
    # the positive rate on at least one dataset
    assert all(row.label_inflation >= -1e-9 for row in rows)
    assert any(abs(row.label_inflation) > 0.05 for row in rows)
