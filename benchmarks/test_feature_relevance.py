"""Section 6 analysis: which features matter for which attack.

Backs Figure 5's explanation: "DoS attacks are best identified by
[smartdet] because the algorithm selects features such as rate of
change of TCP flags, entropy of source ports, and standard deviation of
IP length, which are naturally expected to change during a DoS attack."
"""

import numpy as np

from bench_common import save_artifact

from repro.bench.relevance import feature_relevance, top_features


def test_relevance_heatmap_regenerates(benchmark):
    heatmap = benchmark(feature_relevance, "A10", "F1", n_estimators=10)
    save_artifact("feature_relevance_A10_F1.txt", heatmap.render())
    assert len(heatmap.row_labels) >= 2  # the DoS family of F1
    assert "syn_rate" in heatmap.col_labels


def test_rows_are_normalised():
    heatmap = feature_relevance("A10", "F1", n_estimators=10)
    for i in range(len(heatmap.row_labels)):
        row = np.nan_to_num(heatmap.values[i])
        assert row.sum() == 0 or abs(row.sum() - 1.0) < 1e-6


def test_syn_flood_driven_by_flag_or_rate_features():
    heatmap = feature_relevance("A10", "F1", n_estimators=20)
    if "dos_syn_flood" not in heatmap.row_labels:
        return
    best = top_features(heatmap, "dos_syn_flood", k=4)
    # the flood must be explained by rate/flag/port-spread features,
    # not by payload sizes
    assert set(best) & {"syn_rate", "pps", "count", "ack_rate",
                        "entropy_src_port", "nunique_dst_ip",
                        "std_length", "mean_length"}


def test_different_attacks_have_different_signatures():
    heatmap = feature_relevance("A15", "F8", n_estimators=20)
    if len(heatmap.row_labels) < 2:
        return
    tops = {
        attack: tuple(top_features(heatmap, attack, k=2))
        for attack in heatmap.row_labels
    }
    # not every attack is explained by the same feature pair
    assert len(set(tops.values())) >= 2
