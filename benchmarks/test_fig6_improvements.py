"""Figure 6 / Observation 5: Lumen-guided improvements.

Two heuristics beat the state of the art on the merged benchmark:
merged-dataset training (paper: +12-27% precision) and greedy
module recombination (paper: +4% average precision over the originals).
"""

import json

from bench_common import register_am_algorithms, save_artifact

from repro.bench import BenchmarkRunner, per_attack_precision


def render_fig6(improvements: dict) -> str:
    lines = ["merged-dataset training (tested on the mixed held-out set):"]
    for algorithm, row in improvements["merged"].items():
        delta = row["merged_precision"] - row["single_precision"]
        lines.append(
            f"  {algorithm}: single {row['single_precision']:.3f} -> "
            f"merged {row['merged_precision']:.3f} ({delta:+.3f})"
        )
    lines.append("")
    lines.append(
        f"AM synthesis ({improvements['n_candidates']} candidates searched):"
    )
    for algorithm, row in improvements["am"].items():
        lines.append(
            f"  {algorithm}: {'+'.join(row['blocks'])} -> {row['model']}: "
            f"precision {row['precision']:.3f} recall {row['recall']:.3f}"
        )
    return "\n".join(lines)


def test_fig6_regenerates(improvements, benchmark):
    text = benchmark(render_fig6, improvements)
    save_artifact("fig6_improvements.txt", text)
    save_artifact("fig6_improvements.json", json.dumps(improvements, indent=2))


def test_merged_training_improves_most_algorithms(improvements):
    gains = [
        row["merged_precision"] - row["single_precision"]
        for row in improvements["merged"].values()
    ]
    improved = sum(1 for g in gains if g > 0.005)
    # the paper reports 12-27% gains on its rows; we require most rows
    # to improve and none to get catastrophically worse
    assert improved >= len(gains) / 2
    assert min(gains) > -0.2


def test_am_synthesis_beats_originals(improvements):
    best_am = max(row["precision"] for row in improvements["am"].values())
    assert best_am >= improvements["originals_best_precision"] - 0.02
    assert best_am > 0.9


def test_am_algorithms_run_in_the_benchmark_suite(improvements):
    # AM01-AM03 are real catalog algorithms: evaluate one end to end
    am_ids = register_am_algorithms()
    assert am_ids
    runner = BenchmarkRunner(seed=0)
    result = runner.evaluate(am_ids[0], "F0", "F0")
    assert result.precision > 0.8
    heatmap = per_attack_precision(runner.store)
    assert am_ids[0] in heatmap.row_labels
