"""Figure 1a: direct comparisons possible from the literature alone.

The paper: "for half of the algorithms that we reviewed, there is no
possible comparison" (two algorithms compare directly only if they share
an evaluation dataset).
"""

from bench_common import save_artifact

from repro.datasets import comparability_counts


def render_fig1a() -> str:
    counts = comparability_counts()
    lines = ["algorithm            comparable-with"]
    for key, count in sorted(counts.items(), key=lambda kv: -kv[1]):
        bar = "#" * count
        lines.append(f"{key:<20} {count:>2} {bar}")
    return "\n".join(lines)


def test_fig1a_regenerates(benchmark):
    text = benchmark(render_fig1a)
    save_artifact("fig1a_comparability.txt", text)
    assert "kitsune" in text


def test_fig1a_half_have_zero_comparisons():
    counts = comparability_counts()
    zero = sum(1 for v in counts.values() if v == 0)
    assert zero >= len(counts) / 2  # the paper's headline observation


def test_fig1a_symmetry():
    # comparability is symmetric: it is built from shared datasets
    counts = comparability_counts()
    assert counts["ocsvm"] >= 1 and counts["zeek"] >= 1
    assert counts["nprint"] >= 1 and counts["smartdet"] >= 1
