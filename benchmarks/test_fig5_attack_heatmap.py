"""Figure 5: per-attack precision heatmap (algorithm x attack).

Key claims reproduced:
* certain algorithms are particularly good at a subset of attacks but
  not all (greener squares cluster);
* DoS attacks are best identified by the flag/port-entropy algorithm
  (smartdet, our A10);
* 802.11 attacks (AWID3) are invisible to IP-header algorithms -- only
  the Kitsune-style algorithm (A06) runs on them at all, "and that too
  with very low precision";
* gray squares (NaN) mark algorithm/attack combinations with no
  faithful dataset.
"""

import math

import numpy as np

from bench_common import save_artifact

from repro.bench import per_attack_precision


def test_fig5_regenerates(full_store, benchmark):
    heatmap = benchmark(per_attack_precision, full_store)
    save_artifact("fig5_attack_heatmap.txt", heatmap.render())
    save_artifact("fig5_attack_heatmap.csv", heatmap.to_csv())
    assert len(heatmap.row_labels) >= 16
    assert len(heatmap.col_labels) >= 12


def test_fig5_gray_squares_exist(full_store):
    heatmap = per_attack_precision(full_store)
    # packet algorithms never see connection-only attacks and vice versa
    assert np.isnan(heatmap.values).any()


def test_fig5_dos_best_detected_by_flag_entropy_features(full_store):
    heatmap = per_attack_precision(full_store)
    dos_columns = [
        c for c in heatmap.col_labels
        if c.startswith("dos_") and not math.isnan(heatmap.cell("A10", c))
    ]
    assert dos_columns
    for attack in dos_columns:
        a10 = heatmap.cell("A10", attack)
        assert a10 >= 0.9, (attack, a10)


def test_fig5_wifi_attacks_only_reachable_by_kitsune_family(full_store):
    heatmap = per_attack_precision(full_store)
    wifi = [c for c in heatmap.col_labels if c.startswith("wifi_")]
    assert wifi
    for attack in wifi:
        # connection-level algorithms have no faithful dataset (gray)
        for algorithm in ("A10", "A13", "A14", "A15"):
            assert math.isnan(heatmap.cell(algorithm, attack))
        # A06 runs (it groups by MAC endpoints) but poorly, as the paper
        # observes for AWID3
        a06 = heatmap.cell("A06", attack)
        assert not math.isnan(a06)
        assert a06 < 0.9


def test_fig5_specialisation(full_store):
    heatmap = per_attack_precision(full_store)
    # at least one algorithm is strong (>0.9) on some attack and weak
    # (<0.5) on another -- the "not accurate in others" claim
    specialised = 0
    for i in range(len(heatmap.row_labels)):
        row = heatmap.values[i]
        live = row[~np.isnan(row)]
        if len(live) >= 2 and live.max() > 0.9 and live.min() < 0.5:
            specialised += 1
    assert specialised >= 3
