"""Section 5.2: validating the correctness of the implementation.

The paper validates against reported numbers and finds agreement for
the supervised algorithms (A10 ~ 99%, A14 ~ 99.6% vs 99.9%) but
*disagreement* for the OCSVM family (66% vs 78.6% AUC, 49.2% vs 75%),
attributed to hyperparameters.  We reproduce the same pattern: the
supervised checks come out close, the OCSVM checks come out low.
"""

import os

import pytest

from bench_common import save_artifact

from repro.bench.validation import render_validation, validation_report


@pytest.fixture(scope="module")
def report():
    quick = os.environ.get("REPRO_BENCH_SCOPE") == "quick"
    return validation_report(quick=quick)


def test_validation_table_regenerates(report, benchmark):
    text = benchmark(render_validation, report)
    save_artifact("sec52_validation.txt", text)
    assert "A10" in text and "AUC" in text


def test_supervised_validations_close(report):
    a10 = next(r for r in report if r.algorithm.startswith("A10"))
    a14 = next(r for r in report if r.algorithm.startswith("A14"))
    assert a10.measured > 0.85  # paper: 99% reported, 99% measured
    assert a14.measured > 0.85  # paper: 99.9% reported, 99.6% measured


def test_ocsvm_validations_disagree_downward(report):
    ocsvm_rows = [r for r in report if r.algorithm.startswith("A07")]
    assert len(ocsvm_rows) == 2
    # the paper's honest finding: Lumen measures the OCSVM family well
    # below its reported numbers
    assert any(r.measured < r.reported for r in ocsvm_rows)
