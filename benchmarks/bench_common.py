"""Shared infrastructure for the figure/table benchmarks.

Building the full evaluation matrix (every faithful algorithm x train x
test combination, Section 5.1) takes minutes, so it is built once and
cached under ``benchmarks/_cache/``; every figure benchmark then reads
the same store -- exactly the intermediate-result sharing the paper's
suite performs.  Delete the cache directory to force a full rebuild.

Set ``REPRO_BENCH_SCOPE=quick`` to run on a reduced matrix (3
connection + 2 packet datasets) when iterating.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.algorithms import ALGORITHMS
from repro.algorithms.synthesis import GreedySynthesizer, merged_train_test
from repro.bench import BenchmarkRunner
from repro.bench.results import ResultStore
from repro.core import ExecutionEngine
from repro.flows import Granularity

CACHE_DIR = Path(__file__).parent / "_cache"
ARTIFACT_DIR = Path(__file__).parent / "_artifacts"

CONNECTION_ALGORITHMS = [
    "A07", "A08", "A09", "A10", "A11", "A12", "A13", "A14", "A15",
]
PACKET_ALGORITHMS = ["A00", "A01", "A02", "A03", "A04", "A05", "A06"]


def scope() -> str:
    return os.environ.get("REPRO_BENCH_SCOPE", "full")


def dataset_scope() -> tuple[list[str], list[str]]:
    if scope() == "quick":
        return ["F0", "F1", "F4"], ["P0", "P1"]
    return [f"F{i}" for i in range(10)], ["P0", "P1", "P2"]


def _store_path() -> Path:
    return CACHE_DIR / f"results_{scope()}.json"


def build_full_store() -> ResultStore:
    """Build (or load) the complete Section 5 evaluation matrix."""
    path = _store_path()
    if path.exists():
        return ResultStore.load_json(path)
    CACHE_DIR.mkdir(exist_ok=True)
    flow_datasets, packet_datasets = dataset_scope()
    runner = BenchmarkRunner(seed=0)
    runner.run_matrix(CONNECTION_ALGORITHMS, flow_datasets)
    runner.run_matrix(PACKET_ALGORITHMS, packet_datasets)
    runner.store.save_json(path)
    return runner.store


def save_artifact(name: str, text: str) -> Path:
    """Persist a rendered figure/table next to the benchmarks."""
    ARTIFACT_DIR.mkdir(exist_ok=True)
    path = ARTIFACT_DIR / name
    path.write_text(text)
    return path


# ----------------------------------------------------------------------
# Figure 6: improvement heuristics (merged training + AM synthesis)
# ----------------------------------------------------------------------

MERGED_ALGORITHMS = ["A08", "A09", "A13", "A14"]


def build_improvements() -> dict:
    """Build (or load) the Figure 6 data: merged-dataset training rows
    and the synthesised AM01-AM03 rows."""
    path = CACHE_DIR / f"improvements_{scope()}.json"
    if path.exists():
        return json.loads(path.read_text())
    CACHE_DIR.mkdir(exist_ok=True)
    flow_datasets, _ = dataset_scope()
    engine = ExecutionEngine(track_memory=False)
    from repro.algorithms import build_algorithm
    from repro.datasets import load_dataset
    from repro.ml import precision_score, recall_score

    merged_rows: dict[str, dict] = {}
    for algorithm_id in MERGED_ALGORITHMS:
        spec = build_algorithm(algorithm_id)
        X_train, y_train, X_test, y_test = merged_train_test(
            spec, flow_datasets, fraction=0.1, seed=0, engine=engine
        )
        merged_model = spec.build_model()
        merged_model.fit(X_train, y_train)
        merged_pred = merged_model.predict(X_test)
        # baseline: the typical single-dataset deployment -- train on
        # each dataset alone and test on the same mixed held-out set;
        # report the mean (this is what the paper's Fig. 5-vs-Fig. 6
        # comparison measures)
        single_precisions, single_recalls = [], []
        for train_dataset in flow_datasets:
            X_single, y_single = spec.featurize(
                load_dataset(train_dataset), engine, train_dataset
            )
            single_model = spec.build_model()
            single_model.fit(X_single, y_single)
            single_pred = single_model.predict(X_test)
            single_precisions.append(precision_score(y_test, single_pred))
            single_recalls.append(recall_score(y_test, single_pred))
        import numpy as np

        merged_rows[algorithm_id] = {
            "merged_precision": float(precision_score(y_test, merged_pred)),
            "merged_recall": float(recall_score(y_test, merged_pred)),
            "single_precision": float(np.mean(single_precisions)),
            "single_recall": float(np.mean(single_recalls)),
            "single_best_precision": float(np.max(single_precisions)),
        }

    synthesizer = GreedySynthesizer(
        flow_datasets, fraction=0.1, seed=0, engine=engine
    )
    synthesizer.search(max_blocks=2)
    am_specs = synthesizer.top_specs(3)
    am_rows = {}
    ranked = sorted(synthesizer.results, key=lambda r: r.f1, reverse=True)
    for spec, result in zip(am_specs, ranked):
        am_rows[spec.algorithm_id] = {
            "blocks": list(result.blocks),
            "model": result.model_type,
            "precision": result.precision,
            "recall": result.recall,
            "f1": result.f1,
        }
    payload = {
        "merged": merged_rows,
        "am": am_rows,
        "n_candidates": len(synthesizer.results),
        "originals_best_precision": max(
            merged_rows[a]["single_precision"] for a in MERGED_ALGORITHMS
        ),
    }
    path.write_text(json.dumps(payload, indent=2))
    return payload


def register_am_algorithms() -> list[str]:
    """Ensure AM01..AM03 exist in the catalog (cheap re-synthesis when
    the cache already decided the winning shapes is avoided by rebuilding
    from the cached improvement data)."""
    data = build_improvements()
    from repro.algorithms.synthesis import (
        MODEL_CANDIDATES,
        _feature_template,
        _model_template,
    )
    from repro.algorithms.base import AlgorithmSpec

    ids = []
    for algorithm_id, row in data["am"].items():
        params = next(
            (p for t, p, _ in MODEL_CANDIDATES if t == row["model"]), {}
        )
        scaled = next(
            (s for t, _, s in MODEL_CANDIDATES if t == row["model"]), False
        )
        ALGORITHMS[algorithm_id] = AlgorithmSpec(
            algorithm_id=algorithm_id,
            name=f"synth:{'+'.join(row['blocks'])}:{row['model']}",
            paper="Lumen-synthesised (this work)",
            granularity=Granularity.CONNECTION,
            feature_template=_feature_template(row["blocks"]),
            model_template=_model_template(
                row["model"], params, scaled, len(row["blocks"]) > 1
            ),
        )
        ids.append(algorithm_id)
    return ids
