"""Tables 2 and 3: the algorithms and datasets used for evaluation."""

from bench_common import save_artifact

from repro.algorithms import ALGORITHMS
from repro.datasets import DATASETS
from repro.flows import Granularity


def render_tables() -> str:
    lines = ["Table 2: algorithms", ""]
    for algorithm_id in sorted(ALGORITHMS):
        if not algorithm_id.startswith("A"):
            continue
        spec = ALGORITHMS[algorithm_id]
        lines.append(
            f"{algorithm_id}  {spec.name:<36} {spec.granularity.name:<11} "
            f"{spec.paper}"
        )
    lines += ["", "Table 3: datasets", ""]
    for dataset_id, spec in DATASETS.items():
        lines.append(
            f"{dataset_id}  {spec.stands_in_for:<26} "
            f"{spec.granularity.name:<11} attacks: {', '.join(spec.attacks)}"
        )
    return "\n".join(lines)


def test_tables_regenerate(benchmark):
    text = benchmark(render_tables)
    save_artifact("table23_inventory.txt", text)
    assert "Kitsune" in text
    assert "CTU, 1-1" in text


def test_inventory_counts_match_paper():
    catalog = [a for a in ALGORITHMS if a.startswith("A") and len(a) == 3]
    assert len([a for a in catalog if a[1:].isdigit()]) >= 16
    # ten connection-level and three packet-level dataset profiles
    # (P1/P2 fold multiple paper traces; see repro.datasets docstring)
    connection = [
        d for d, s in DATASETS.items()
        if s.granularity == Granularity.CONNECTION
    ]
    packet = [
        d for d, s in DATASETS.items() if s.granularity == Granularity.PACKET
    ]
    assert len(connection) == 10
    assert len(packet) == 3
