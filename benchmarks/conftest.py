"""Session fixtures shared by all figure/table benchmarks."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from bench_common import build_full_store, build_improvements  # noqa: E402


@pytest.fixture(scope="session")
def full_store():
    """The complete Section 5 evaluation matrix (built once, cached)."""
    return build_full_store()


@pytest.fixture(scope="session")
def improvements():
    """The Figure 6 improvement data (built once, cached)."""
    return build_improvements()
