"""Figure 10: median precision/recall per (train, test) dataset pair.

Observation 3: the diagonal is strongest, the matrix is asymmetric, and
the stealthy Torii dataset (F5) is the canonical example -- no training
dataset generalises *to* F5, but a model trained *on* F5 transfers out.
"""

import numpy as np

from bench_common import save_artifact

from repro.bench import train_test_median_matrix
from repro.bench.analysis import asymmetry_pairs


def test_fig10a_precision_matrix(full_store, benchmark):
    matrix = benchmark(train_test_median_matrix, full_store,
                       metric="precision")
    save_artifact("fig10a_precision_matrix.txt", matrix.render())
    save_artifact("fig10a_precision_matrix.csv", matrix.to_csv())
    assert len(matrix.row_labels) == len(matrix.col_labels)


def test_fig10b_recall_matrix(full_store):
    matrix = train_test_median_matrix(full_store, metric="recall")
    save_artifact("fig10b_recall_matrix.txt", matrix.render())


def test_diagonal_dominates(full_store):
    matrix = train_test_median_matrix(full_store, metric="precision")
    values = matrix.values
    n = len(matrix.row_labels)
    diagonal = np.nanmean(np.diag(values))
    off_mask = ~np.eye(n, dtype=bool)
    off = np.nanmean(values[off_mask])
    assert diagonal > off + 0.2


def test_matrix_is_asymmetric(full_store):
    pairs = asymmetry_pairs(full_store, metric="precision", gap=0.3)
    save_artifact(
        "fig10_asymmetries.txt",
        "\n".join(
            f"train {a} -> test {b}: {forward:.2f} | "
            f"train {b} -> test {a}: {backward:.2f}"
            for a, b, forward, backward in pairs
        ),
    )
    assert len(pairs) >= 1  # e.g. the paper's F5/F6 example


def test_torii_is_hard_to_reach_but_generalises_out(full_store):
    matrix = train_test_median_matrix(full_store, metric="precision")
    if "F5" not in matrix.row_labels:
        return  # quick scope without F5
    f5 = matrix.row_labels.index("F5")
    n = len(matrix.row_labels)
    f_indices = [
        i for i, label in enumerate(matrix.row_labels)
        if label.startswith("F") and i != f5
    ]
    into_f5 = [matrix.values[f5, j] for j in f_indices]
    out_of_f5 = [matrix.values[i, f5] for i in f_indices]
    into_f5 = [v for v in into_f5 if not np.isnan(v)]
    out_of_f5 = [v for v in out_of_f5 if not np.isnan(v)]
    # models trained elsewhere fail on F5's stealthy traffic; training
    # on F5 transfers better than the reverse
    assert np.median(into_f5) < 0.5
    assert np.median(out_of_f5) > np.median(into_f5)
