"""Scalability benchmarks (the paper's Section 4.2 concern).

"The captured traffic dataset can be huge ... Even open-source
frameworks such as nprint fail with large pcap files."  These
benchmarks measure how the columnar substrate scales: featurization
time versus trace size (expected ~linear for aggregate features), and
the flow-assembly sort (expected n log n) staying far from the
quadratic blow-ups that kill per-packet object designs.
"""

import time

import numpy as np
import pytest

from bench_common import save_artifact

from repro.core import ExecutionEngine, Pipeline
from repro.flows import assemble_connections
from repro.traffic import AttackSpec, NetworkScenario

FEATURE_TEMPLATE = [
    {"func": "Groupby", "input": None, "output": "flows",
     "flowid": ["connection"]},
    {"func": "ApplyAggregates", "input": ["flows"], "output": "X",
     "list": ["count", "duration", "bandwidth", "mean:length",
              "std:length", "entropy:src_port", "flag_frac:SYN"]},
]


def make_trace(duration: float, seed: int = 77):
    return NetworkScenario(
        name=f"scale-{duration:.0f}",
        device_counts={"workstation": 4, "camera": 2, "smart_hub": 2},
        duration=duration,
        seed=seed,
        attacks=(AttackSpec("dos_syn_flood", 0.4, 0.6, intensity=0.1),),
    ).generate()


@pytest.fixture(scope="module")
def traces():
    return {duration: make_trace(duration) for duration in (60.0, 240.0, 960.0)}


def test_featurization_scales_subquadratically(traces):
    pipeline = Pipeline.from_template(FEATURE_TEMPLATE)
    timings = {}
    for duration, table in sorted(traces.items()):
        engine = ExecutionEngine(use_cache=False, track_memory=False)
        started = time.perf_counter()
        engine.run(pipeline, table, outputs=["X"])
        timings[len(table)] = time.perf_counter() - started
    sizes = sorted(timings)
    save_artifact(
        "scaling_featurization.txt",
        "\n".join(f"{n} packets: {timings[n]:.4f}s" for n in sizes) + "\n",
    )
    # 16x more packets must cost far less than 16^2 = 256x more time
    growth = timings[sizes[-1]] / max(timings[sizes[0]], 1e-9)
    size_ratio = sizes[-1] / sizes[0]
    assert growth < size_ratio * 4


def test_flow_assembly_throughput(traces, benchmark):
    table = traces[960.0]
    flows = benchmark(assemble_connections, table)
    rate = len(table) / max(benchmark.stats.stats.mean, 1e-9)
    save_artifact(
        "scaling_assembly.txt",
        f"{len(table)} packets -> {len(flows)} connections; "
        f"{rate:,.0f} packets/s\n",
    )
    assert rate > 100_000  # columnar assembly, not per-packet objects


def test_generation_throughput(benchmark):
    table = benchmark.pedantic(make_trace, args=(240.0,), rounds=3,
                               iterations=1)
    rate = len(table) / max(benchmark.stats.stats.mean, 1e-9)
    assert rate > 5_000  # packets generated per second
