"""Figure 7: distance from the best algorithm per train/test pair.

Observation 1: "There isn't a single algorithm with the highest
precision or highest recall score for all training/testing scenarios."
"""

from bench_common import save_artifact

from repro.bench import best_gap_by_algorithm
from repro.bench.analysis import no_single_best


def test_fig7a_precision_gaps(full_store, benchmark):
    gaps = benchmark(best_gap_by_algorithm, full_store, metric="precision")
    save_artifact("fig7a_precision_gap.txt", gaps.render())
    # gaps are distances from the per-pair best: non-negative, and for
    # every algorithm there exists some pair where it is beaten
    summary = gaps.summary()
    assert all(s["min"] >= -1e-9 for s in summary.values())


def test_fig7b_recall_gaps(full_store):
    gaps = best_gap_by_algorithm(full_store, metric="recall")
    save_artifact("fig7b_recall_gap.txt", gaps.render())
    assert set(gaps.groups) == set(full_store.algorithms())


def test_observation1_no_single_best(full_store):
    assert no_single_best(full_store, metric="precision")
    assert no_single_best(full_store, metric="recall")


def test_packet_family_close_to_optimal(full_store):
    # "algorithms A1-A4 are generally good for packet classification as
    # their precision difference from optimal is close to zero"
    import numpy as np

    gaps = best_gap_by_algorithm(full_store, metric="precision")
    nprint_medians = [
        np.median(gaps.groups[a]) for a in ("A01", "A02", "A03", "A04")
    ]
    assert np.mean(nprint_medians) < 0.25
