"""Figure 8: per-algorithm scores when trained/tested on one dataset.

Observation 2 (first half): "the precision of 8/16 algorithms and
recall of 4/16 algorithms drops below 20% for at least one dataset"
even in the same-dataset setting.
"""

from bench_common import save_artifact

from repro.bench import distribution_by_algorithm
from repro.bench.analysis import algorithms_below


def test_fig8a_precision(full_store, benchmark):
    box = benchmark(distribution_by_algorithm, full_store,
                    metric="precision", mode="same")
    save_artifact("fig8a_same_precision.txt", box.render())
    assert len(box.groups) == 16


def test_fig8b_recall(full_store):
    box = distribution_by_algorithm(full_store, metric="recall", mode="same")
    save_artifact("fig8b_same_recall.txt", box.render())
    assert len(box.groups) == 16


def test_observation2_same_dataset_failures(full_store):
    precision_drops = algorithms_below(
        full_store, metric="precision", threshold=0.2, mode="same"
    )
    recall_drops = algorithms_below(
        full_store, metric="recall", threshold=0.2, mode="same"
    )
    # paper: 8/16 for precision, 4/16 for recall; the shape claim is
    # several-but-not-all algorithms fail somewhere even in the easy
    # setting, and the failures concentrate in the anomaly-detection
    # family rather than the supervised one
    assert 3 <= len(precision_drops) <= 13
    assert 3 <= len(recall_drops) <= 13
    anomaly_family = {"A06", "A07", "A08", "A09", "A11"}
    assert set(precision_drops) & anomaly_family
    assert not {"A10", "A14", "A15"} & set(precision_drops)


def test_supervised_algorithms_strong_same_dataset(full_store):
    # the supervised family should look good in this setting (their
    # papers' reported numbers are high for a reason)
    import numpy as np

    box = distribution_by_algorithm(full_store, metric="precision",
                                    mode="same")
    for algorithm in ("A10", "A14", "A15"):
        assert np.median(box.groups[algorithm]) > 0.9
