"""Engine benchmarks: per-operation profiling and the design ablations.

Covers the Section 3.2 engine claims:
* the execution engine reports time/memory per operation;
* intermediate-result sharing makes repeated featurization ~free;
* dead-value elimination bounds the live environment;
* the dataflow-parallel mode matches serial results.
"""

import numpy as np
import pytest

from bench_common import save_artifact

from repro.algorithms import build_algorithm
from repro.core import ExecutionEngine, Pipeline
from repro.datasets import load_dataset


TEMPLATE_ALGORITHM = "A10"
DATASET = "F0"


@pytest.fixture(scope="module")
def pipeline():
    spec = build_algorithm(TEMPLATE_ALGORITHM)
    return Pipeline.from_template(list(spec.feature_template))


@pytest.fixture(scope="module")
def table():
    return load_dataset(DATASET)


def test_featurization_cold(pipeline, table, benchmark):
    """The real per-dataset featurization cost (cache disabled)."""
    engine = ExecutionEngine(use_cache=False, track_memory=False)

    result = benchmark(
        engine.run, pipeline, table, outputs=["X", "y"], source_token=DATASET
    )
    assert result["X"].shape[0] == len(result["y"])


def test_featurization_cached(pipeline, table, benchmark):
    """Intermediate-result sharing: warm runs should be >10x faster."""
    engine = ExecutionEngine(track_memory=False)
    engine.run(pipeline, table, outputs=["X"], source_token=DATASET)  # warm

    benchmark(engine.run, pipeline, table, outputs=["X"],
              source_token=DATASET)
    assert all(p.cached for p in engine.last_report.profiles)


def test_cache_ablation_speedup(pipeline, table):
    import time

    cold_engine = ExecutionEngine(use_cache=False, track_memory=False)
    started = time.perf_counter()
    cold_engine.run(pipeline, table, outputs=["X"], source_token=DATASET)
    cold = time.perf_counter() - started

    warm_engine = ExecutionEngine(track_memory=False)
    warm_engine.run(pipeline, table, outputs=["X"], source_token=DATASET)
    started = time.perf_counter()
    warm_engine.run(pipeline, table, outputs=["X"], source_token=DATASET)
    warm = time.perf_counter() - started
    save_artifact(
        "engine_cache_ablation.txt",
        f"cold featurization: {cold:.4f}s\nwarm (cached): {warm:.4f}s\n"
        f"speedup: {cold / max(warm, 1e-9):.1f}x\n",
    )
    assert warm < cold / 5


def test_profile_report_artifact(pipeline, table):
    engine = ExecutionEngine(use_cache=False, track_memory=True)
    engine.run(pipeline, table, outputs=["X"], source_token=DATASET)
    report = engine.last_report
    save_artifact("engine_profile.txt", report.render())
    assert report.total_seconds > 0
    assert report.peak_memory_bytes > 0
    hotspots = report.hotspots(top=1)
    assert hotspots[0].operation in {"Groupby", "TimeSlice", "ApplyAggregates"}


def test_parallel_mode_matches_serial(table, benchmark):
    template = [
        {"func": "Groupby", "input": None, "output": "flows",
         "flowid": ["connection"]},
        {"func": "ApplyAggregates", "input": ["flows"], "output": "A",
         "list": ["count", "duration", "mean:length", "std:length"]},
        {"func": "FirstNPackets", "input": ["flows"], "output": "B", "n": 4},
        {"func": "ZeekConnLog", "input": ["flows"], "output": "C"},
        {"func": "ConcatFeatures", "input": ["A", "B"], "output": "AB"},
        {"func": "ConcatFeatures", "input": ["AB", "C"], "output": "X"},
    ]
    pipeline = Pipeline.from_template(template)
    serial = ExecutionEngine(use_cache=False, track_memory=False).run(
        pipeline, table, outputs=["X"]
    )
    parallel_engine = ExecutionEngine(
        use_cache=False, parallel=True, track_memory=False
    )

    parallel = benchmark(
        parallel_engine.run, pipeline, table, outputs=["X"]
    )
    assert np.array_equal(serial["X"], parallel["X"])
